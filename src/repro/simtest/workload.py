"""Workload adapters: application traffic for fuzz scenarios.

Wraps the measurement drivers of :mod:`repro.workloads.drivers` behind
one small interface (``setup`` / ``start`` / ``stop`` / ``on_join``) so
the runner can treat "users solving Sudoku" and "users posting to a
message board" uniformly.  All randomness comes from streams derived
from the scenario seed — never from a shared or wall-clock-seeded rng —
so a workload is as replayable as the protocol underneath it.

Beyond the paper's two measurement workloads (Sudoku, message board)
this module hosts the **workload zoo** — four adapters chosen for the
conflict structures they stress rather than for paper fidelity:

* :class:`ListDocWorkload` — positional insert/delete races on shared
  documents (checked against a sequential oracle by
  :func:`repro.simtest.probes.list_oracle_probe`);
* :class:`CounterWorkload` — every machine hammering *one* shared
  counters/presence object (counter-sum conservation probe);
* :class:`MarketWorkload` — Atomic/OrElse escrow settlements where a
  broken all-or-nothing implementation destroys money (atomic probe);
* :class:`HostileWorkload` — an adversarial client profile: op floods,
  unknown objects/methods, malformed arguments and stale-spec edits,
  all of which the runtime must reject cleanly rather than crash on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.apps.listdoc import SharedDoc
from repro.apps.marketplace import Marketplace
from repro.apps.message_board import MessageBoard
from repro.apps.presence import PresenceCounters
from repro.core.operations import AtomicOp, OrElseOp, PrimitiveOp, SharedOp
from repro.errors import (
    IssueBlockedError,
    NodeCrashedError,
    NotSubscribedError,
    UnknownMethodError,
    UnknownObjectError,
)
from repro.sim.rand import derive_seed, seeded_stream
from repro.workloads.activity import ActivityModel
from repro.workloads.drivers import MixedAppSession, SudokuSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import DistributedSystem
    from repro.simtest.scenario import ScenarioSpec

#: Exceptions a workload action may legitimately hit mid-churn: the
#: machine is inside a sync window, crashed, or has not (re)joined far
#: enough to see the object.  The user simply loses a turn.
ISSUE_HAZARDS = (
    IssueBlockedError,
    NodeCrashedError,
    UnknownObjectError,
    NotSubscribedError,
)


class SudokuWorkload:
    """The paper's measurement workload: N players, shared grids."""

    def __init__(self, spec: "ScenarioSpec", system: "DistributedSystem"):
        self.session = SudokuSession(
            system,
            n_grids=spec.n_grids,
            activity=ActivityModel.busy(spec.think_mean),
            seed=derive_seed(spec.seed, "sudoku-session"),
            clues=40,
        )

    def setup(self) -> None:
        self.session.setup(quiesce_time=120.0)

    def start(self) -> None:
        self.session.start()

    def stop(self) -> None:
        self.session.stop()

    def on_join(self, machine_id: str) -> None:
        self.session.add_player(machine_id)

    def actions(self) -> int:
        return self.session.stats.actions


class BoardWorkload:
    """Low-conflict contrast workload: everyone posts to shared topics.

    Unlike Sudoku players, board users keep posting while *offline*
    (state ``offline`` issues against the guesstimate and merges on
    return), which is exactly the reconnection path worth fuzzing.
    """

    def __init__(self, spec: "ScenarioSpec", system: "DistributedSystem"):
        self.system = system
        self.spec = spec
        self.rng = seeded_stream("board-actions", spec.seed)
        self.topics = [f"topic-{index}" for index in range(spec.n_grids)]
        self.board_id: str | None = None
        self._messages = 0
        self.session: MixedAppSession | None = None

    def setup(self) -> None:
        creator = self.system.api(self.system.machine_ids()[0])
        board = creator.create_instance(MessageBoard)
        self.board_id = board.unique_id
        for topic in self.topics:
            creator.invoke(board, "create_topic", topic)
        self.system.run_until_quiesced(max_time=120.0)
        users = {
            machine_id: self._thunks(machine_id)
            for machine_id in self.system.machine_ids()
        }
        self.session = MixedAppSession(
            self.system,
            users,
            activity=ActivityModel.busy(self.spec.think_mean),
            seed=derive_seed(self.spec.seed, "board-session"),
        )

    def start(self) -> None:
        assert self.session is not None
        self.session.start()

    def stop(self) -> None:
        if self.session is not None:
            self.session.stop()

    def on_join(self, machine_id: str) -> None:
        assert self.session is not None
        self.session.users[machine_id] = self._thunks(machine_id)
        self.session._schedule(machine_id)

    def actions(self) -> int:
        return self.session.stats.actions if self.session is not None else 0

    # -- user actions ------------------------------------------------------------

    def _thunks(self, machine_id: str) -> list[tuple[float, callable]]:
        return [
            (5.0, lambda: self._post(machine_id)),
            (1.0, lambda: self._delete(machine_id)),
        ]

    def _issuable(self, machine_id: str) -> bool:
        node = self.system.nodes.get(machine_id)
        return node is not None and node.state in ("active", "offline")

    def _post(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        topic = self.rng.choice(self.topics)
        self._messages += 1
        text = f"msg-{self._messages}"
        try:
            self.system.api(machine_id).invoke(
                self.board_id, "post", topic, machine_id, text
            )
        except (IssueBlockedError, NodeCrashedError, UnknownObjectError):
            pass  # machine mid-(re)join; its user simply loses a turn

    def _delete(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        topic = self.rng.choice(self.topics)
        index = self.rng.randrange(4)
        try:
            self.system.api(machine_id).invoke(
                self.board_id, "delete_post", topic, index, machine_id
            )
        except (IssueBlockedError, NodeCrashedError, UnknownObjectError):
            pass

class _SessionWorkload:
    """Shared plumbing for the zoo adapters (mirrors BoardWorkload).

    Subclasses create their shared objects in :meth:`_create_objects`
    and describe per-machine traffic in :meth:`_thunks`; everything
    else (session lifecycle, churn-tolerant issuing) lives here.
    """

    stream_name = "zoo"

    def __init__(self, spec: "ScenarioSpec", system: "DistributedSystem"):
        self.system = system
        self.spec = spec
        self.rng = seeded_stream(f"{self.stream_name}-actions", spec.seed)
        self.session: MixedAppSession | None = None
        self._counter = 0

    def setup(self) -> None:
        creator = self.system.api(self.system.machine_ids()[0])
        self._create_objects(creator)
        self.system.run_until_quiesced(max_time=120.0)
        users = {
            machine_id: self._thunks(machine_id)
            for machine_id in self.system.machine_ids()
        }
        self.session = MixedAppSession(
            self.system,
            users,
            activity=ActivityModel.busy(self.spec.think_mean),
            seed=derive_seed(self.spec.seed, f"{self.stream_name}-session"),
        )

    def start(self) -> None:
        assert self.session is not None
        self.session.start()

    def stop(self) -> None:
        if self.session is not None:
            self.session.stop()

    def on_join(self, machine_id: str) -> None:
        assert self.session is not None
        self._welcome(machine_id)
        self.session.users[machine_id] = self._thunks(machine_id)
        self.session._schedule(machine_id)

    def actions(self) -> int:
        return self.session.stats.actions if self.session is not None else 0

    # -- subclass hooks ----------------------------------------------------------

    def _create_objects(self, creator) -> None:
        raise NotImplementedError

    def _thunks(self, machine_id: str) -> list[tuple[float, callable]]:
        raise NotImplementedError

    def _welcome(self, machine_id: str) -> None:
        """Per-machine setup for a mid-run joiner (optional)."""

    # -- helpers -----------------------------------------------------------------

    def _issuable(self, machine_id: str) -> bool:
        node = self.system.nodes.get(machine_id)
        return node is not None and node.state in ("active", "offline")

    def _invoke(self, machine_id: str, object_id: str, method: str, *args) -> None:
        if not self._issuable(machine_id):
            return
        try:
            self.system.api(machine_id).invoke(object_id, method, *args)
        except ISSUE_HAZARDS:
            pass

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}-{self._counter}"


class ListDocWorkload(_SessionWorkload):
    """Concurrent positional edits on ``n_grids`` shared documents.

    Every index is drawn from a small hot window at the head of the
    document, so inserts and deletes from different machines constantly
    race for the same positions — the exact conflict structure the
    committed-prefix list oracle linearizes and checks.
    """

    stream_name = "listdoc"

    def _create_objects(self, creator) -> None:
        self.doc_ids: list[str] = []
        for _ in range(self.spec.n_grids):
            doc = creator.create_instance(SharedDoc)
            self.doc_ids.append(doc.unique_id)
            for index in range(6):
                creator.invoke(doc, "append_line", "seed", f"seed-{index}")

    def _thunks(self, machine_id: str) -> list[tuple[float, callable]]:
        return [
            (5.0, lambda: self._edit(machine_id, "insert_at", 5, with_text=True)),
            (2.0, lambda: self._edit(machine_id, "delete_at", 6)),
            (2.0, lambda: self._edit(machine_id, "replace_at", 6, with_text=True)),
            (1.0, lambda: self._append(machine_id)),
        ]

    def _edit(self, machine_id: str, method: str, span: int, with_text: bool = False) -> None:
        doc_id = self.rng.choice(self.doc_ids)
        index = self.rng.randrange(span)
        args = [index, machine_id]
        if with_text:
            args.append(self._fresh("txt"))
        self._invoke(machine_id, doc_id, method, *args)

    def _append(self, machine_id: str) -> None:
        doc_id = self.rng.choice(self.doc_ids)
        self._invoke(machine_id, doc_id, "append_line", machine_id, self._fresh("txt"))


class CounterWorkload(_SessionWorkload):
    """High fan-in: every machine hammers one counters/presence hub."""

    stream_name = "counters"

    def _create_objects(self, creator) -> None:
        hub = creator.create_instance(PresenceCounters)
        self.hub_id = hub.unique_id
        self.pots = [f"pot-{index}" for index in range(max(2, self.spec.n_grids))]
        for pot in self.pots:
            creator.invoke(hub, "bump", pot, 40)
        self.tags = [f"tag-{index}" for index in range(4)]
        self._present: dict[str, bool] = {}

    def _thunks(self, machine_id: str) -> list[tuple[float, callable]]:
        return [
            (4.0, lambda: self._bump(machine_id)),
            (3.0, lambda: self._transfer(machine_id)),
            (3.0, lambda: self._tally(machine_id)),
            (2.0, lambda: self._toggle_presence(machine_id)),
        ]

    def _bump(self, machine_id: str) -> None:
        pot = self.rng.choice(self.pots)
        amount = self.rng.choice([-4, -2, -1, 1, 2, 3, 5])
        self._invoke(machine_id, self.hub_id, "bump", pot, amount)

    def _transfer(self, machine_id: str) -> None:
        src, dst = self.rng.sample(self.pots, 2)
        amount = self.rng.randint(1, 6)
        self._invoke(machine_id, self.hub_id, "transfer", src, dst, amount)

    def _tally(self, machine_id: str) -> None:
        # The certified-@commutative op: adjacent committed pairs feed
        # the commute probe's both-orders re-execution.
        tag = self.rng.choice(self.tags)
        self._invoke(machine_id, self.hub_id, "tally", tag)

    def _toggle_presence(self, machine_id: str) -> None:
        # λ-state toggle on the *issue attempt*: mismatches with the
        # committed roster are expected and produce clean conflicts.
        if self._present.get(machine_id, False):
            self._invoke(machine_id, self.hub_id, "check_out", machine_id)
        else:
            self._invoke(machine_id, self.hub_id, "check_in", machine_id)
        self._present[machine_id] = not self._present.get(machine_id, False)


class MarketWorkload(_SessionWorkload):
    """Escrow settlements under contention: Atomic/OrElse-heavy flows.

    A small pool of hot offers guarantees lost races, i.e. Atomics that
    succeed on the guess and fail at commit — exactly the rollbacks the
    all-or-nothing probe audits via the money-conservation law.
    """

    stream_name = "market"

    def _create_objects(self, creator) -> None:
        market = creator.create_instance(Marketplace)
        self.market_id = market.unique_id
        machine_ids = self.system.machine_ids()
        items_per_user = max(2, self.spec.n_grids)
        item_index = 0
        for machine_id in machine_ids:
            creator.invoke(market, "register", machine_id)
            creator.invoke(market, "mint", machine_id, 150)
            for _ in range(items_per_user):
                item = f"item-{item_index}"
                item_index += 1
                creator.invoke(market, "stock_item", machine_id, item)
                if item_index % 2 == 0:
                    creator.invoke(
                        market, "list_item", machine_id, item, 5 + item_index % 7
                    )

    def _welcome(self, machine_id: str) -> None:
        self._invoke(machine_id, self.market_id, "register", machine_id)
        self._invoke(machine_id, self.market_id, "mint", machine_id, 150)

    def _thunks(self, machine_id: str) -> list[tuple[float, callable]]:
        return [
            (5.0, lambda: self._buy(machine_id)),
            (3.0, lambda: self._sell(machine_id)),
            (2.0, lambda: self._bargain(machine_id)),
            (1.0, lambda: self._invoke(
                machine_id, self.market_id, "mint", machine_id,
                self.rng.randint(5, 20),
            )),
            (1.0, lambda: self._delist(machine_id)),
        ]

    def _purchase_op(self, api, buyer: str, item: str, seller: str, price: int):
        return api.create_atomic(
            [
                api.create_operation(self.market_id, "debit", buyer, price),
                api.create_operation(self.market_id, "take_offer", item, buyer, price),
                api.create_operation(self.market_id, "credit", seller, price),
            ]
        )

    def _open_offers(self, api, exclude: str | None = None):
        with api.reading(self.market_id) as market:
            return [
                offer
                for offer in market.open_offers()
                if exclude is None or offer[1] != exclude
            ]

    def _buy(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        api = self.system.api(machine_id)
        try:
            offers = self._open_offers(api, exclude=machine_id)
            if not offers:
                return
            item, seller, price = self.rng.choice(offers)
            api.issue_when_possible(
                self._purchase_op(api, machine_id, item, seller, price)
            )
        except ISSUE_HAZARDS:
            pass

    def _bargain(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        api = self.system.api(machine_id)
        try:
            offers = self._open_offers(api, exclude=machine_id)
            if len(offers) < 2:
                return
            picks = self.rng.sample(offers, 2)
            alternatives = [
                self._purchase_op(api, machine_id, item, seller, price)
                for item, seller, price in picks
            ]
            api.issue_when_possible(
                api.create_or_else(alternatives[0], alternatives[1])
            )
        except ISSUE_HAZARDS:
            pass

    def _sell(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        api = self.system.api(machine_id)
        try:
            with api.reading(self.market_id) as market:
                held = market.holdings(machine_id)
            if not held:
                self._invoke(
                    machine_id, self.market_id, "stock_item",
                    machine_id, self._fresh(f"craft-{machine_id}"),
                )
                return
            item = self.rng.choice(held)
            self._invoke(
                machine_id, self.market_id, "list_item",
                machine_id, item, self.rng.randint(3, 12),
            )
        except ISSUE_HAZARDS:
            pass

    def _delist(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        api = self.system.api(machine_id)
        try:
            mine = [
                item
                for item, seller, _price in self._open_offers(api)
                if seller == machine_id
            ]
            if mine:
                self._invoke(
                    machine_id, self.market_id, "delist",
                    machine_id, self.rng.choice(mine),
                )
        except ISSUE_HAZARDS:
            pass


class HostileWorkload(_SessionWorkload):
    """An adversarial client profile: everything a hostile or broken
    client can throw at the public API surface.

    Op floods, unknown objects and methods, malformed argument types,
    wrong arity, and stale-spec edits must all end in clean rejections
    (a falsy ticket or a typed error) — never a crashed node or a
    convergence violation.  A slice of legitimate traffic rides along
    so the scenario still commits real work.
    """

    stream_name = "hostile"

    def _create_objects(self, creator) -> None:
        doc = creator.create_instance(SharedDoc)
        self.doc_id = doc.unique_id
        for index in range(6):
            creator.invoke(doc, "append_line", "seed", f"seed-{index}")
        hub = creator.create_instance(PresenceCounters)
        self.hub_id = hub.unique_id
        creator.invoke(hub, "bump", "pot", 30)

    def _thunks(self, machine_id: str) -> list[tuple[float, callable]]:
        return [
            (3.0, lambda: self._legit_edit(machine_id)),
            (2.0, lambda: self._flood(machine_id)),
            (2.0, lambda: self._malformed_args(machine_id)),
            (1.0, lambda: self._unknown_object(machine_id)),
            (1.0, lambda: self._unknown_method(machine_id)),
            (1.0, lambda: self._wrong_arity(machine_id)),
            (1.0, lambda: self._stale_spec(machine_id)),
        ]

    def _legit_edit(self, machine_id: str) -> None:
        if self.rng.random() < 0.5:
            self._invoke(
                machine_id, self.doc_id, "insert_at",
                self.rng.randrange(4), machine_id, self._fresh("txt"),
            )
        else:
            self._invoke(
                machine_id, self.hub_id, "bump", "pot",
                self.rng.choice([-2, -1, 1, 2]),
            )

    def _flood(self, machine_id: str) -> None:
        """A burst of ops in one simulated instant (rate-limit abuse)."""
        for _ in range(self.rng.randint(4, 12)):
            self._invoke(
                machine_id, self.doc_id, "insert_at",
                0, machine_id, self._fresh("flood"),
            )

    def _malformed_args(self, machine_id: str) -> None:
        """Type-confused and out-of-range arguments: rejected tickets."""
        attack = self.rng.choice(
            [
                lambda: ("insert_at", "zero", machine_id, "x"),
                lambda: ("insert_at", True, machine_id, "x"),
                lambda: ("insert_at", 10**6, machine_id, "x"),
                lambda: ("delete_at", -5, machine_id),
                lambda: ("insert_at", 0, "", "x"),
                lambda: ("insert_at", 0, machine_id, 12345),
            ]
        )
        self._invoke(machine_id, self.doc_id, *attack())

    def _unknown_object(self, machine_id: str) -> None:
        self._invoke(
            machine_id, f"SharedDoc:{machine_id}:999999", "insert_at",
            0, machine_id, "ghost",
        )

    def _unknown_method(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        try:
            self.system.api(machine_id).invoke(self.doc_id, "drop_table", 1)
        except ISSUE_HAZARDS:
            pass
        except UnknownMethodError:
            pass  # the typed rejection a hostile client must receive

    def _wrong_arity(self, machine_id: str) -> None:
        if not self._issuable(machine_id):
            return
        api = self.system.api(machine_id)
        try:
            op = api.create_operation(self.doc_id, "insert_at", 0)
            api.issue_operation(op)
        except ISSUE_HAZARDS:
            pass
        except TypeError:
            pass  # missing arguments surface as a clean TypeError

    def _stale_spec(self, machine_id: str) -> None:
        """Edit against a read of the guess: by commit time the read is
        stale and the op conflicts (succeeds at issue, fails at commit)."""
        if not self._issuable(machine_id):
            return
        api = self.system.api(machine_id)
        try:
            with api.reading(self.doc_id) as doc:
                length = doc.line_count()
            if length:
                self._invoke(machine_id, self.doc_id, "delete_at", length - 1, machine_id)
        except ISSUE_HAZARDS:
            pass


WORKLOAD_ADAPTERS = {
    "sudoku": SudokuWorkload,
    "board": BoardWorkload,
    "listdoc": ListDocWorkload,
    "counters": CounterWorkload,
    "market": MarketWorkload,
    "hostile": HostileWorkload,
}


def build_workload(spec: "ScenarioSpec", system: "DistributedSystem"):
    try:
        adapter = WORKLOAD_ADAPTERS[spec.workload]
    except KeyError:
        raise ValueError(f"unknown workload {spec.workload!r}") from None
    return adapter(spec, system)


# ---------------------------------------------------------------------------
# Standalone op-stream sampler (property tests, codec round-trips)
# ---------------------------------------------------------------------------

#: Workloads `sample_op_stream` can model without a live system.
SAMPLED_WORKLOADS = ("listdoc", "counters", "market", "hostile")


def sample_op_stream(workload: str, seed: int, count: int = 40) -> list[SharedOp]:
    """A deterministic, representative operation stream for ``workload``.

    Pure function of ``(workload, seed, count)``: builds the same op
    trees — same vocabulary and tree shapes the live adapter issues —
    without a running system, so property tests can pin per-seed
    determinism and registry-codec round-trips cheaply.
    """
    if workload not in SAMPLED_WORKLOADS:
        raise ValueError(
            f"unknown sampled workload {workload!r}; known: {SAMPLED_WORKLOADS}"
        )
    rng = seeded_stream(f"sample-{workload}", seed)
    builder = {
        "listdoc": _sample_listdoc_op,
        "counters": _sample_counters_op,
        "market": _sample_market_op,
        "hostile": _sample_hostile_op,
    }[workload]
    return [builder(rng, index) for index in range(count)]


def _sample_listdoc_op(rng, index: int) -> SharedOp:
    doc = f"SharedDoc:m01:{rng.randint(1, 3)}"
    author = f"m{rng.randint(1, 5):02d}"
    kind = rng.choice(["insert_at", "delete_at", "replace_at", "append_line"])
    if kind == "insert_at":
        return PrimitiveOp(doc, kind, (rng.randrange(6), author, f"txt-{index}"))
    if kind == "delete_at":
        return PrimitiveOp(doc, kind, (rng.randrange(6), author))
    if kind == "replace_at":
        return PrimitiveOp(doc, kind, (rng.randrange(6), author, f"txt-{index}"))
    return PrimitiveOp(doc, kind, (author, f"txt-{index}"))


def _sample_counters_op(rng, index: int) -> SharedOp:
    hub = "PresenceCounters:m01:1"
    user = f"m{rng.randint(1, 5):02d}"
    kind = rng.choice(["bump", "transfer", "check_in", "check_out"])
    if kind == "bump":
        return PrimitiveOp(hub, kind, (f"pot-{rng.randrange(3)}", rng.choice([-3, -1, 1, 2, 5])))
    if kind == "transfer":
        return PrimitiveOp(hub, kind, (f"pot-{rng.randrange(3)}", f"pot-{3 + rng.randrange(3)}", rng.randint(1, 6)))
    return PrimitiveOp(hub, kind, (user,))


def _sample_market_purchase(rng, index: int) -> AtomicOp:
    market = "Marketplace:m01:1"
    buyer = f"m{rng.randint(1, 5):02d}"
    seller = f"m{rng.randint(1, 5):02d}"
    price = rng.randint(3, 12)
    item = f"item-{rng.randrange(8)}"
    return AtomicOp(
        [
            PrimitiveOp(market, "debit", (buyer, price)),
            PrimitiveOp(market, "take_offer", (item, buyer, price)),
            PrimitiveOp(market, "credit", (seller, price)),
        ]
    )


def _sample_market_op(rng, index: int) -> SharedOp:
    market = "Marketplace:m01:1"
    user = f"m{rng.randint(1, 5):02d}"
    kind = rng.choice(["buy", "bargain", "list", "mint"])
    if kind == "buy":
        return _sample_market_purchase(rng, index)
    if kind == "bargain":
        return OrElseOp(
            _sample_market_purchase(rng, index),
            _sample_market_purchase(rng, index),
        )
    if kind == "list":
        return PrimitiveOp(
            market, "list_item", (user, f"item-{rng.randrange(8)}", rng.randint(3, 12))
        )
    return PrimitiveOp(market, "mint", (user, rng.randint(5, 20)))


def _sample_hostile_op(rng, index: int) -> SharedOp:
    doc = "SharedDoc:m01:1"
    user = f"m{rng.randint(1, 5):02d}"
    kind = rng.choice(["legit", "type_confusion", "out_of_range", "flood"])
    if kind == "legit":
        return PrimitiveOp(doc, "insert_at", (rng.randrange(4), user, f"txt-{index}"))
    if kind == "type_confusion":
        return PrimitiveOp(doc, "insert_at", (rng.choice(["zero", True, None]), user, f"txt-{index}"))
    if kind == "out_of_range":
        return PrimitiveOp(doc, "delete_at", (rng.choice([-5, 10**6]), user))
    return PrimitiveOp(doc, "insert_at", (0, user, f"flood-{index}"))
