"""Protocol and application mutations for fuzzer self-tests.

A fuzzer that has never seen a bug proves nothing.  Each mutation here
is a small, named, *known* violation patched into the runtime for the
duration of one run; the self-test (:func:`repro.simtest.fuzz.selftest`)
asserts that fuzzing with the mutation active reports a violation, that
the failing seed replays bit-identically, and that the shrinker reduces
it to a tiny scenario.

Two families:

* **protocol mutations** (``commit_order``, ``double_apply``) patch
  :func:`repro.runtime.synchronizer.consolidated_order` — the single
  seam through which every machine derives the global apply order —
  breaking the paper's core agreement guarantee (C(i) = C(j),
  sc(i) = sc(j)).  The classic probes (checkpoint agreement, formal
  invariants, replay) catch these.
* **semantic mutations** (``list_drift``, ``counter_leak``,
  ``atomic_partial``) patch an *application or operation-algebra
  method* so that every replica computes the same wrong answer.
  Agreement holds perfectly — only the workload-zoo convergence probes
  (independent oracle, conservation laws) can see them, which is
  exactly what their planted-mutation tests demonstrate.
* **effect mutations** (``footprint``, ``commute``) plant the two
  hazards the glint effect engine reasons about: a write outside the
  inferred footprint of an operation (invisible to contracts,
  invariants and conservation laws alike — only
  :func:`repro.simtest.probes.footprint_probe` sees it) and an
  order-dependent ``@commutative`` operation (every replica still
  agrees, only :func:`repro.simtest.probes.commute_probe`'s
  both-orders re-execution sees it).

Each registry entry is ``(holder, attribute, factory)``: ``factory``
receives the pristine attribute and returns the mutant bound in its
place while :func:`apply_mutation` is active.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.apps.listdoc import SharedDoc
from repro.apps.presence import PresenceCounters
from repro.core.operations import AtomicOp
from repro.runtime import synchronizer as sync_mod


def _commit_order(pristine):
    """Slaves apply each round in *reversed* consolidated order.

    With two or more ops in a round, slave committed stores and
    completed sequences diverge from the master's.
    """

    def mutant(node, round_state):
        keys = pristine(node, round_state)
        if not node.is_master and len(keys) > 1:
            return list(reversed(keys))
        return keys

    return mutant


def _double_apply(pristine):
    """Slaves apply the first op of a multi-op round twice.

    Duplicate keys in C and a diverged sc — caught by both the
    runtime checks and the replay oracle.
    """

    def mutant(node, round_state):
        keys = pristine(node, round_state)
        if not node.is_master and len(keys) > 1:
            return [keys[0]] + keys
        return keys

    return mutant


def _list_drift(pristine):
    """Interior inserts land one position late — on *every* replica.

    The classic OT off-by-one: results, contracts ("grew by one") and
    cross-machine agreement all still hold, because every machine makes
    the same mistake.  Only replaying the committed stream against the
    independent oracle (:func:`repro.simtest.probes.list_oracle_probe`)
    exposes the drift.
    """

    def mutant(self, index, author, text):
        if (
            isinstance(index, int)
            and not isinstance(index, bool)
            and 0 < index < len(self.lines)
        ):
            return pristine(self, index + 1, author, text)
        return pristine(self, index, author, text)

    return mutant


def _counter_leak(pristine):
    """Transfers of more than one unit leak one unit in flight.

    The destination receives ``amount - 1``: the ``@ensures`` contract
    only pins the *source* leg, both replicas agree on the (wrong)
    state, and the roster invariants still hold — but the counter sum
    no longer equals the net of committed bumps, which is exactly the
    flow law :func:`repro.simtest.probes.counter_conservation_probe`
    checks.
    """

    def mutant(self, src, dst, amount):
        ok = pristine(self, src, dst, amount)
        if ok and isinstance(amount, int) and amount > 1:
            self.counters[dst] -= 1
        return ok

    return mutant


def _atomic_partial(pristine):
    """Atomic keeps the legs that ran before the first failure.

    The textbook broken transaction: children execute directly against
    the backing view instead of a copy-on-write buffer, so an aborted
    purchase leaves the buyer debited with no item.  Money conservation
    (:func:`repro.simtest.probes.atomic_probe`) breaks on the first
    lost race.
    """

    def mutant(self, view):
        for child in self.children:
            if not child.execute(view):
                return False
        return True

    return mutant


def _footprint(pristine):
    """Successful check-outs also bump ``arrivals`` — off-frame.

    ``arrivals`` is outside ``check_out``'s declared *and* inferred
    ``@modifies`` frame, so the runtime would never ``mark_dirty`` it
    on a delta refresh.  The poke happens *after* the wrapped pristine
    call returns, so the in-wrap frame/ensures checks are already
    done; every replica agrees, no invariant mentions ``arrivals``,
    and the conservation law ignores it.  Only the static/dynamic
    footprint comparison (:func:`repro.simtest.probes.footprint_probe`)
    can see the stray write.
    """

    def mutant(self, user):
        ok = pristine(self, user)
        if ok:
            self.arrivals += 1
        return ok

    return mutant


def _commute(pristine):
    """``tally`` keeps an order-sensitive digest — no longer commutes.

    The digest folds each tag into ``sightings["#order"]`` with a
    non-commutative polynomial step, so two tallies of *different*
    tags produce different digests depending on commit order — yet
    every replica applies the same order and still agrees, the
    invariant (non-negative ints) holds, and the per-tag ensures
    clause is untouched.  The mutant keeps the runtime
    ``@commutative`` marker (a real bug of this shape would too: the
    marker is the stale *claim*), so only
    :func:`repro.simtest.probes.commute_probe`'s both-orders
    re-execution exposes it.
    """

    def mutant(self, tag):
        ok = pristine(self, tag)
        if ok:
            acc = self.sightings.get("#order", 0)
            self.sightings["#order"] = (acc * 31 + sum(tag.encode())) % 1000003
        return ok

    mutant.__g_commutative__ = True
    return mutant


#: name -> (holder, attribute, mutant factory)
MUTATIONS = {
    "commit_order": (sync_mod, "consolidated_order", _commit_order),
    "double_apply": (sync_mod, "consolidated_order", _double_apply),
    "list_drift": (SharedDoc, "insert_at", _list_drift),
    "counter_leak": (PresenceCounters, "transfer", _counter_leak),
    "atomic_partial": (AtomicOp, "execute", _atomic_partial),
    "footprint": (PresenceCounters, "check_out", _footprint),
    "commute": (PresenceCounters, "tally", _commute),
}


@contextmanager
def apply_mutation(name: str | None):
    """Context manager: patch the named mutation in, restore on exit."""
    if name is None:
        yield
        return
    try:
        holder, attribute, factory = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}"
        ) from None
    pristine = getattr(holder, attribute)
    setattr(holder, attribute, factory(pristine))
    try:
        yield
    finally:
        setattr(holder, attribute, pristine)
