"""Protocol mutations for fuzzer self-tests.

A fuzzer that has never seen a bug proves nothing.  Each mutation here
is a small, named, *known* protocol violation patched into the runtime
for the duration of one run; the self-test
(:func:`repro.simtest.fuzz.selftest`) asserts that fuzzing with the
mutation active reports an invariant violation, that the failing seed
replays bit-identically, and that the shrinker reduces it to a tiny
scenario.

All mutations patch :func:`repro.runtime.synchronizer.consolidated_order`
— the single seam through which every machine derives the global apply
order for a round — because mis-ordering there breaks exactly the
paper's core agreement guarantee (C(i) = C(j), sc(i) = sc(j)) without
touching unrelated machinery.
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.runtime import synchronizer as sync_mod

_pristine_order = sync_mod.consolidated_order


def _commit_order(node, round_state):
    """Slaves apply each round in *reversed* consolidated order.

    With two or more ops in a round, slave committed stores and
    completed sequences diverge from the master's.
    """
    keys = _pristine_order(node, round_state)
    if not node.is_master and len(keys) > 1:
        return list(reversed(keys))
    return keys


def _double_apply(node, round_state):
    """Slaves apply the first op of a multi-op round twice.

    Duplicate keys in C and a diverged sc — caught by both the
    runtime checks and the replay oracle.
    """
    keys = _pristine_order(node, round_state)
    if not node.is_master and len(keys) > 1:
        return [keys[0]] + keys
    return keys


MUTATIONS = {
    "commit_order": _commit_order,
    "double_apply": _double_apply,
}


@contextmanager
def apply_mutation(name: str | None):
    """Context manager: patch the named mutation in, restore on exit."""
    if name is None:
        yield
        return
    try:
        mutant = MUTATIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown mutation {name!r}; known: {sorted(MUTATIONS)}"
        ) from None
    sync_mod.consolidated_order = mutant
    try:
        yield
    finally:
        sync_mod.consolidated_order = _pristine_order
