"""Invariant probes: the oracles a fuzz run is judged against.

Three layers, from cheapest to deepest:

* :func:`checkpoint_probe` — valid at *any* time: the committed
  sequences of all clean nodes agree position-for-position on the
  global positions they share (commits happen in one global order, so
  even mid-round no two machines may disagree on a committed slot).
* :func:`quiescence_probe` — valid at quiescent points: the runtime's
  own invariant checks, the formal invariants of
  :mod:`repro.semantics.invariants` over a projection of the live
  system, and the full :func:`repro.model.simulation_relation.replay_check`
  replay against the reference executor.
* :func:`storage_probe` — after every recovery and at the end: for
  each durably-backed node, recovering ``snapshot + WAL`` from its
  store and replaying must reproduce exactly the committed state and
  global position the live node holds.

Each probe returns a list of human-readable violation strings (empty =
all invariants hold), so the runner can aggregate across probes without
aborting mid-scenario.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.errors import GuesstimateError
from repro.model.simulation_relation import replay_check
from repro.semantics import invariants as formal
from repro.semantics.state import AbstractMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.node import GuesstimateNode
    from repro.runtime.system import DistributedSystem


def _aligned_completed(node: "GuesstimateNode") -> dict[int, tuple[str, bool]]:
    """Global position -> (op key, result) for the suffix this node holds."""
    return {
        node.completed_offset + index: (str(entry.key), bool(entry.result))
        for index, entry in enumerate(node.model.completed)
    }


def checkpoint_probe(system: "DistributedSystem") -> list[str]:
    """Mid-run committed-prefix agreement (safe at any simulated time)."""
    nodes = [
        node
        for node in system.nodes.values()
        if node.state in ("active", "offline")
    ]
    if len(nodes) < 2:
        return []
    violations = []
    merged: dict[int, tuple[str, tuple[str, bool]]] = {}
    for node in nodes:
        for position, entry in _aligned_completed(node).items():
            if position in merged:
                holder, reference = merged[position]
                if entry != reference:
                    violations.append(
                        "committed-prefix disagreement at global position "
                        f"{position}: {holder} has {reference}, "
                        f"{node.machine_id} has {entry}"
                    )
            else:
                merged[position] = (node.machine_id, entry)
    return violations


def _canonical_state(store) -> str:
    """A shared store as one comparable scalar (canonical JSON)."""
    return json.dumps(store.snapshot_states(), sort_keys=True)


def _project_abstract(system: "DistributedSystem") -> tuple[AbstractMachine, ...] | None:
    """Project the quiesced runtime onto the formal state space.

    At quiescence every pending queue is empty, so each machine is
    ``(λ, C, sc, (), sg)`` with sc/sg rendered as canonical JSON.  The
    global completed prefix a late joiner missed is filled in from a
    full-history node; with no full-history node the projection is
    undefined and we skip (replay_check reports that case itself).
    """
    nodes = system.active_nodes()
    full = [node for node in nodes if node.completed_offset == 0]
    if not nodes or not full:
        return None
    reference = [
        (str(entry.key), bool(entry.result)) for entry in full[0].model.completed
    ]
    machines = []
    for node in nodes:
        own = [
            (str(entry.key), bool(entry.result)) for entry in node.model.completed
        ]
        completed = tuple(reference[: node.completed_offset] + own)
        machines.append(
            AbstractMachine(
                lam=(node.machine_id,),
                completed=completed,
                sc=_canonical_state(node.model.committed),
                pending=(),
                sg=_canonical_state(node.model.guess),
            )
        )
    return tuple(machines)


def quiescence_probe(system: "DistributedSystem") -> list[str]:
    """All paper invariants at a quiescent point (deep, three layers)."""
    violations = []
    if not system.quiesced():
        return ["quiescence_probe called on a non-quiescent system"]

    try:
        system.check_all_invariants()
    except GuesstimateError as exc:
        violations.append(f"runtime invariant: {exc}")

    state = _project_abstract(system)
    if state is not None:
        violations.extend(
            f"formal invariant: {name}" for name in formal.check_all(state)
        )

    try:
        replay_check(system)
    except GuesstimateError as exc:
        violations.append(f"simulation relation: {exc}")

    return violations


def storage_probe(system: "DistributedSystem") -> list[str]:
    """Durable state must replay to exactly the live committed state."""
    violations = []
    for node in system.nodes.values():
        if node.state not in ("active", "offline"):
            continue
        try:
            recovered = node.storage.recover()
        except GuesstimateError as exc:  # pragma: no cover - corrupt store
            violations.append(f"storage recover failed on {node.machine_id}: {exc}")
            continue
        if recovered is None:
            continue  # durability off for this node
        rebuilt = node._rebuild_from_storage(recovered)
        if not rebuilt.committed.state_equal(node.model.committed):
            violations.append(
                f"storage replay of {node.machine_id} does not reproduce "
                "its committed state"
            )
        durable_position = recovered.base_offset + rebuilt.completed_count
        live_position = node.completed_offset + node.model.completed_count
        if durable_position != live_position:
            violations.append(
                f"storage replay of {node.machine_id} stops at global "
                f"position {durable_position}, live node is at {live_position}"
            )
    return violations
