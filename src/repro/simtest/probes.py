"""Invariant probes: the oracles a fuzz run is judged against.

Three layers, from cheapest to deepest:

* :func:`checkpoint_probe` — valid at *any* time: the committed
  sequences of all clean nodes agree position-for-position on the
  global positions they share (commits happen in one global order, so
  even mid-round no two machines may disagree on a committed slot).
* :func:`quiescence_probe` — valid at quiescent points: the runtime's
  own invariant checks, the formal invariants of
  :mod:`repro.semantics.invariants` over a projection of the live
  system, and the full :func:`repro.model.simulation_relation.replay_check`
  replay against the reference executor.
* :func:`storage_probe` — after every recovery and at the end: for
  each durably-backed node, recovering ``snapshot + WAL`` from its
  store and replaying must reproduce exactly the committed state and
  global position the live node holds.

The workload zoo adds four *convergence* probes, each tuned to one
workload's conflict structure but safe to run in any scenario:

* :func:`guess_divergence_probe` — pairwise bound on guess-state
  divergence: two active machines may disagree on an object only while
  one of them has unsettled activity on it (pending or in-flight
  operations, an unrefreshed apply, or commits the other has not
  applied yet).  Objects outside that set must be byte-identical.
* :func:`list_oracle_probe` — linearization check: the committed edit
  stream of every :class:`~repro.apps.listdoc.SharedDoc` is replayed
  against an independent pure-Python oracle; every committed result
  and the final document must match.
* :func:`counter_conservation_probe` — flow check: the counter sum of
  every :class:`~repro.apps.presence.PresenceCounters` equals the net
  of its successfully committed bumps (transfers only move value).
* :func:`atomic_probe` — all-or-nothing check: every
  :class:`~repro.apps.marketplace.Marketplace` replica satisfies the
  money-conservation law ``sum(balances) == minted`` and item
  uniqueness — the laws a partially-applied Atomic breaks first.

Two *effect* probes close the loop with glint's static effect engine
(:mod:`repro.analysis.effects`), replaying the committed stream on
fresh local replicas:

* :func:`footprint_probe` — every committed primitive op's *observed*
  dirty attribute set must be a subset of its statically inferred
  write footprint (a write outside the footprint is exactly the kind
  that dodges ``mark_dirty`` and GL006).
* :func:`commute_probe` — adjacent committed pairs of runtime
  ``@commutative`` operations on the same object are re-executed in
  both orders; final public state and both results must agree.

Each probe returns a list of human-readable violation strings (empty =
all invariants hold), so the runner can aggregate across probes without
aborting mid-scenario.
"""

from __future__ import annotations

import itertools
import json
from typing import TYPE_CHECKING

from repro.apps.listdoc import SharedDoc
from repro.apps.marketplace import Marketplace
from repro.apps.presence import PresenceCounters
from repro.core.operations import AtomicOp, CreateObjectOp, PrimitiveOp, SharedOp
from repro.errors import GuesstimateError
from repro.model.simulation_relation import replay_check
from repro.semantics import invariants as formal
from repro.semantics.state import AbstractMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.node import GuesstimateNode
    from repro.runtime.system import DistributedSystem


def _aligned_completed(node: "GuesstimateNode") -> dict[int, tuple[str, bool]]:
    """Global position -> (op key, result) for the suffix this node holds."""
    return {
        node.completed_offset + index: (str(entry.key), bool(entry.result))
        for index, entry in enumerate(node.model.completed)
    }


def checkpoint_probe(system: "DistributedSystem") -> list[str]:
    """Mid-run committed-prefix agreement (safe at any simulated time)."""
    nodes = [
        node
        for node in system.nodes.values()
        if node.state in ("active", "offline")
    ]
    if len(nodes) < 2:
        return []
    violations = []
    merged: dict[int, tuple[str, tuple[str, bool]]] = {}
    for node in nodes:
        for position, entry in _aligned_completed(node).items():
            if position in merged:
                holder, reference = merged[position]
                if entry != reference:
                    violations.append(
                        "committed-prefix disagreement at global position "
                        f"{position}: {holder} has {reference}, "
                        f"{node.machine_id} has {entry}"
                    )
            else:
                merged[position] = (node.machine_id, entry)
    return violations


def _canonical_state(store) -> str:
    """A shared store as one comparable scalar (canonical JSON)."""
    return json.dumps(store.snapshot_states(), sort_keys=True)


def _project_abstract(system: "DistributedSystem") -> tuple[AbstractMachine, ...] | None:
    """Project the quiesced runtime onto the formal state space.

    At quiescence every pending queue is empty, so each machine is
    ``(λ, C, sc, (), sg)`` with sc/sg rendered as canonical JSON.  The
    global completed prefix a late joiner missed is filled in from a
    full-history node; with no full-history node the projection is
    undefined and we skip (replay_check reports that case itself).
    """
    nodes = system.active_nodes()
    full = [node for node in nodes if node.completed_offset == 0]
    if not nodes or not full:
        return None
    reference = [
        (str(entry.key), bool(entry.result)) for entry in full[0].model.completed
    ]
    machines = []
    for node in nodes:
        own = [
            (str(entry.key), bool(entry.result)) for entry in node.model.completed
        ]
        completed = tuple(reference[: node.completed_offset] + own)
        machines.append(
            AbstractMachine(
                lam=(node.machine_id,),
                completed=completed,
                sc=_canonical_state(node.model.committed),
                pending=(),
                sg=_canonical_state(node.model.guess),
            )
        )
    return tuple(machines)


def quiescence_probe(system: "DistributedSystem") -> list[str]:
    """All paper invariants at a quiescent point (deep, three layers)."""
    violations = []
    if not system.quiesced():
        return ["quiescence_probe called on a non-quiescent system"]

    try:
        system.check_all_invariants()
    except GuesstimateError as exc:
        violations.append(f"runtime invariant: {exc}")

    state = _project_abstract(system)
    if state is not None:
        violations.extend(
            f"formal invariant: {name}" for name in formal.check_all(state)
        )

    try:
        replay_check(system)
    except GuesstimateError as exc:
        violations.append(f"simulation relation: {exc}")

    return violations


def storage_probe(system: "DistributedSystem") -> list[str]:
    """Durable state must replay to exactly the live committed state."""
    violations = []
    for node in system.nodes.values():
        if node.state not in ("active", "offline"):
            continue
        try:
            recovered = node.storage.recover()
        except GuesstimateError as exc:  # pragma: no cover - corrupt store
            violations.append(f"storage recover failed on {node.machine_id}: {exc}")
            continue
        if recovered is None:
            continue  # durability off for this node
        rebuilt = node._rebuild_from_storage(recovered)
        if not rebuilt.committed.state_equal(node.model.committed):
            violations.append(
                f"storage replay of {node.machine_id} does not reproduce "
                "its committed state"
            )
        durable_position = recovered.base_offset + rebuilt.completed_count
        live_position = node.completed_offset + node.model.completed_count
        if durable_position != live_position:
            violations.append(
                f"storage replay of {node.machine_id} stops at global "
                f"position {durable_position}, live node is at {live_position}"
            )
    return violations


# ---------------------------------------------------------------------------
# Workload-zoo convergence probes
# ---------------------------------------------------------------------------


def _unsettled_ids(node: "GuesstimateNode") -> set[str]:
    """Objects on which ``node``'s guess may legitimately lead or lag:
    targets of pending and in-flight operations, plus applied rounds
    whose guess refresh has not run yet (the apply/refresh callback
    gap)."""
    ids = set(node.synchronizer.refresh_backlog)
    for entry in node.model.pending:
        ids |= entry.op.object_ids()
    for entry in node.synchronizer.in_flight.values():
        ids |= entry.op.object_ids()
    return ids


def guess_divergence_probe(system: "DistributedSystem") -> list[str]:
    """Pairwise guess-state divergence bound (safe at any time).

    For every pair of *active* machines, an object the two guess stores
    disagree on must be explained by unsettled activity: one side has
    pending/in-flight/unrefreshed operations touching it, or holds
    commits past the pair's common global position.  Anything else is a
    guess replica that silently drifted — the bug class the per-round
    refresh oracle can only see on the node it runs on, never *across*
    machines.
    """
    nodes = [node for node in system.nodes.values() if node.state == "active"]
    if len(nodes) < 2:
        return []
    snapshots = {
        node.machine_id: node.model.guess.snapshot_states() for node in nodes
    }
    unsettled = {node.machine_id: _unsettled_ids(node) for node in nodes}
    position = {
        node.machine_id: node.completed_offset + node.model.completed_count
        for node in nodes
    }
    violations = []
    for left, right in itertools.combinations(nodes, 2):
        allowed = unsettled[left.machine_id] | unsettled[right.machine_id]
        common = min(position[left.machine_id], position[right.machine_id])
        for node in (left, right):
            for index, entry in enumerate(node.model.completed):
                if node.completed_offset + index >= common:
                    allowed |= entry.op.object_ids()
        left_snap = snapshots[left.machine_id]
        right_snap = snapshots[right.machine_id]
        for uid in sorted(set(left_snap) | set(right_snap)):
            if uid in allowed:
                continue
            if left_snap.get(uid) != right_snap.get(uid):
                violations.append(
                    f"guess divergence on {uid}: {left.machine_id} and "
                    f"{right.machine_id} disagree with no pending, in-flight, "
                    "unrefreshed or unshared-commit activity on it"
                )
    return violations


class _DocOracle:
    """Pure-Python mirror of :class:`SharedDoc` (no contracts, no
    stores): the independent implementation the committed edit stream
    is linearized against."""

    def __init__(self):
        self.lines: list[list[str]] = []
        self.line_limit = 400

    @staticmethod
    def _valid_line(author, text) -> bool:
        return isinstance(author, str) and bool(author) and isinstance(text, str)

    @staticmethod
    def _valid_index(index) -> bool:
        return isinstance(index, int) and not isinstance(index, bool)

    def apply(self, method: str, args: tuple) -> bool | None:
        """Run one edit; returns its result, or None if unmodelled."""
        try:
            if method == "insert_at":
                index, author, text = args
                if not self._valid_line(author, text) or not self._valid_index(index):
                    return False
                if not 0 <= index <= len(self.lines):
                    return False
                if len(self.lines) >= self.line_limit:
                    return False
                self.lines.insert(index, [author, text])
                return True
            if method == "delete_at":
                index, author = args
                if not (isinstance(author, str) and author):
                    return False
                if not self._valid_index(index) or not 0 <= index < len(self.lines):
                    return False
                del self.lines[index]
                return True
            if method == "replace_at":
                index, author, text = args
                if not self._valid_line(author, text) or not self._valid_index(index):
                    return False
                if not 0 <= index < len(self.lines):
                    return False
                self.lines[index] = [author, text]
                return True
            if method == "append_line":
                author, text = args
                if not self._valid_line(author, text):
                    return False
                if len(self.lines) >= self.line_limit:
                    return False
                self.lines.append([author, text])
                return True
        except (TypeError, ValueError):
            return None
        return None


def list_oracle_probe(system: "DistributedSystem") -> list[str]:
    """Linearize committed ``SharedDoc`` edits against a fresh oracle.

    On every active full-history node, replay the committed operation
    stream (which is the one global serialization of all edits) through
    :class:`_DocOracle`; each committed result and the final document
    must agree with the oracle.  Documents touched by composed or
    unmodelled operations are skipped rather than guessed at.
    """
    violations = []
    for node in system.nodes.values():
        if node.state != "active" or node.completed_offset != 0:
            continue
        docs: dict[str, _DocOracle] = {}
        tainted: set[str] = set()
        for index, entry in enumerate(node.model.completed):
            op = entry.op
            if isinstance(op, CreateObjectOp) and op.cls is SharedDoc:
                if entry.result and op.init_state is None:
                    docs[op.object_id] = _DocOracle()
                else:
                    tainted.add(op.object_id)
                continue
            if isinstance(op, PrimitiveOp):
                oracle = docs.get(op.object_id)
                if oracle is None or op.object_id in tainted:
                    continue
                expected = oracle.apply(op.method_name, op.args)
                if expected is None:
                    tainted.add(op.object_id)
                elif expected != entry.result:
                    violations.append(
                        f"list oracle divergence on {node.machine_id} at "
                        f"global position {index}: {op.describe()} committed "
                        f"{entry.result}, oracle says {expected}"
                    )
                    tainted.add(op.object_id)
            else:
                tainted |= op.object_ids() & set(docs)
        for uid, oracle in docs.items():
            if uid in tainted or not node.model.committed.has(uid):
                continue
            live = node.model.committed.get(uid).lines
            if live != oracle.lines:
                violations.append(
                    f"list oracle divergence on {node.machine_id}: {uid} "
                    f"committed lines {live!r} != oracle lines {oracle.lines!r}"
                )
    return violations


def _net_bumps(op: SharedOp, uid: str, result: bool) -> tuple[int, bool]:
    """(counter-sum delta, tainted) contributed by one committed op.

    Transfers and presence ops never change the sum; an aborted Atomic
    contributes nothing; an ``OrElse`` touching the hub is ambiguous
    (the committed result does not say which branch ran), so the hub is
    tainted instead of guessed at.
    """
    if isinstance(op, PrimitiveOp):
        if op.object_id != uid:
            return 0, False
        if op.method_name == "bump":
            return (op.args[1] if result else 0), False
        if op.method_name in ("transfer", "check_in", "check_out", "tally"):
            return 0, False
        return 0, True
    if isinstance(op, AtomicOp):
        if not result:
            return 0, False  # aborted: all-or-nothing means nothing
        delta = 0
        for child in op.children:
            child_delta, child_tainted = _net_bumps(child, uid, True)
            if child_tainted:
                return 0, True
            delta += child_delta
        return delta, False
    return (0, True) if uid in op.object_ids() else (0, False)


def counter_conservation_probe(system: "DistributedSystem") -> list[str]:
    """Counter sums equal the net of successfully committed bumps.

    ``bump`` is the only operation that changes a
    :class:`PresenceCounters` sum; ``transfer`` conserves it.  A leaky
    transfer (or any lost/duplicated delta in the commit pipeline)
    breaks the equality even though every replica still *agrees* — this
    is a flow law, not an agreement law, so no pairwise comparison can
    see it.
    """
    violations = []
    for node in system.nodes.values():
        if node.state != "active" or node.completed_offset != 0:
            continue
        expected: dict[str, int] = {}
        tainted: set[str] = set()
        for entry in node.model.completed:
            op = entry.op
            if isinstance(op, CreateObjectOp) and op.cls is PresenceCounters:
                if entry.result and op.init_state is None:
                    expected[op.object_id] = 0
                else:
                    tainted.add(op.object_id)
                continue
            for uid in op.object_ids() & set(expected):
                delta, bad = _net_bumps(op, uid, entry.result)
                if bad:
                    tainted.add(uid)
                else:
                    expected[uid] += delta
        for uid, net in expected.items():
            if uid in tainted or not node.model.committed.has(uid):
                continue
            live = sum(node.model.committed.get(uid).counters.values())
            if live != net:
                violations.append(
                    f"counter conservation broken on {node.machine_id}: {uid} "
                    f"sums to {live}, net of committed bumps is {net}"
                )
    return violations


def atomic_probe(system: "DistributedSystem") -> list[str]:
    """Marketplace conservation laws on every replica (committed and
    guess stores of every clean node).

    Money enters only through ``mint`` and every later movement is a
    balanced debit/credit pair inside one Atomic, so
    ``sum(balances) == minted`` holds at every observable point — an
    Atomic that keeps partial effects breaks it on the first lost race.
    Item uniqueness (stock xor escrow) breaks the same way.
    """
    violations = []
    for node in system.nodes.values():
        if node.state not in ("active", "offline"):
            continue
        for store_name in ("committed", "guess"):
            store = getattr(node.model, store_name)
            for uid, obj in store:
                if not isinstance(obj, Marketplace):
                    continue
                total = sum(obj.balances.values())
                if total != obj.minted:
                    violations.append(
                        f"atomic all-or-nothing broken on {node.machine_id} "
                        f"({store_name}): {uid} holds {total} coins but "
                        f"minted {obj.minted}"
                    )
                placed: list[str] = [
                    item for items in obj.stock.values() for item in items
                ] + list(obj.offers)
                if len(placed) != len(set(placed)):
                    violations.append(
                        f"atomic all-or-nothing broken on {node.machine_id} "
                        f"({store_name}): {uid} has duplicated items"
                    )
    return violations


# ---------------------------------------------------------------------------
# effect probes: runtime twins of the glint effect engine


_APP_EFFECTS: dict[str, dict[str, set[str] | None]] | None = None


def _static_app_effects() -> dict[str, dict[str, set[str] | None]]:
    """Class name -> method -> statically inferred write-attribute set.

    Built lazily (glint never runs during normal simulation) from the
    same interprocedural effect engine GL006 uses, over every shared
    class in :mod:`repro.apps`.  ``None`` marks a footprint the engine
    could not fully infer; the probes taint such objects rather than
    accuse on a guess.
    """
    global _APP_EFFECTS
    if _APP_EFFECTS is None:
        from pathlib import Path

        import repro.apps as apps_package
        from repro.analysis.context import LIFECYCLE_METHODS, build_context
        from repro.analysis.effects import effect_engine
        from repro.analysis.loader import load_paths

        modules = load_paths([Path(apps_package.__file__).parent])
        context = build_context(modules)
        engine = effect_engine(context)
        table: dict[str, dict[str, set[str] | None]] = {}
        for class_name, info in context.shared_classes.items():
            methods: dict[str, set[str] | None] = {}
            for method_name in info.methods:
                if method_name in LIFECYCLE_METHODS:
                    continue
                footprint = engine.footprint(class_name, method_name)
                methods[method_name] = (
                    set(footprint.writes) if footprint.trusted else None
                )
            table[class_name] = methods
        _APP_EFFECTS = table
    return _APP_EFFECTS


_MISSING = object()


def _public_state(obj: object) -> dict[str, object]:
    """Deep copy of the instance fields the contract layer considers state."""
    import copy

    return {
        key: copy.deepcopy(value)
        for key, value in obj.__dict__.items()
        if not key.startswith("_g_")
    }


def _fresh_replicas(node: "GuesstimateNode"):
    """Drive a committed-stream replay on fresh local replicas.

    Yields ``(index, entry, op, obj)`` for every replayable committed
    :class:`PrimitiveOp`; creation, composed ops, unknown classes and
    tainting are handled here so both effect probes share one walk.
    The caller executes the op itself (so it can snapshot around it)
    and reports taint back via the returned ``taint`` callable.
    """
    table = _static_app_effects()
    replicas: dict[str, object] = {}
    tainted: set[str] = set()
    for index, entry in enumerate(node.model.completed):
        op = entry.op
        if isinstance(op, CreateObjectOp):
            if (
                entry.result
                and op.init_state is None
                and op.cls.__name__ in table
            ):
                replicas[op.object_id] = op.cls()
            else:
                tainted.add(op.object_id)
            continue
        if isinstance(op, PrimitiveOp):
            obj = replicas.get(op.object_id)
            if obj is None or op.object_id in tainted:
                continue
            yield index, entry, op, obj, tainted
        else:
            tainted |= op.object_ids() & set(replicas)


def footprint_probe(system: "DistributedSystem") -> list[str]:
    """Observed dirty-sets stay inside statically inferred footprints.

    On every active full-history node, replay the committed stream on
    fresh replicas (contract checking off — the live run already paid
    for it) and diff public state around each primitive op.  Any
    attribute that changed but is missing from the engine's inferred
    write footprint is a violation: such a write dodges ``mark_dirty``
    on the real runtime and GL006 in the linter, so the probe is the
    dynamic witness for both.  Objects touched by composed ops,
    unknown methods, or incompletely inferred footprints are tainted
    rather than guessed at.
    """
    from repro.spec.contracts import set_checking

    table = _static_app_effects()
    violations = []
    for node in system.nodes.values():
        if node.state != "active" or node.completed_offset != 0:
            continue
        snapshots: dict[str, dict[str, object]] = {}
        previous = set_checking(False)
        try:
            for index, entry, op, obj, tainted in _fresh_replicas(node):
                inferred = table[type(obj).__name__].get(op.method_name, None)
                if inferred is None:
                    tainted.add(op.object_id)
                    continue
                if op.object_id not in snapshots:
                    snapshots[op.object_id] = _public_state(obj)
                before = snapshots[op.object_id]
                try:
                    getattr(obj, op.method_name)(*op.args)
                except Exception:
                    tainted.add(op.object_id)
                    continue
                after = _public_state(obj)
                changed = sorted(
                    key
                    for key in set(before) | set(after)
                    if before.get(key, _MISSING) != after.get(key, _MISSING)
                )
                stray = [key for key in changed if key not in inferred]
                if stray:
                    violations.append(
                        f"footprint violation on {node.machine_id} at global "
                        f"position {index}: {op.describe()} wrote "
                        f"{stray!r} outside its inferred footprint "
                        f"{sorted(inferred)!r}"
                    )
                    tainted.add(op.object_id)
                snapshots[op.object_id] = after
        finally:
            set_checking(previous)
    return violations


def _reexecute(cls, pre_state, first, second):
    """Run ``first`` then ``second`` on a fresh replica seeded with
    ``pre_state``; returns ``(results, final public state)`` or ``None``
    if either op raised (taint, not a verdict)."""
    import copy

    obj = cls()
    obj.__dict__.update(copy.deepcopy(pre_state))
    results = []
    for op in (first, second):
        try:
            results.append(getattr(obj, op.method_name)(*op.args))
        except Exception:
            return None
    return results, _public_state(obj)


def commute_probe(system: "DistributedSystem") -> list[str]:
    """Committed adjacent ``@commutative`` pairs commute in fact.

    Walk each full-history committed stream; whenever two consecutive
    primitive ops on the same object both carry the runtime
    ``@commutative`` marker, re-execute the pair in both orders from
    the state that preceded the first op.  A certified-commutative
    pair must produce identical final public state *and* identical
    per-op results either way — the exact property a
    commutativity-aware synchronizer would rely on to skip
    re-execution after a reordered commit.
    """
    from repro.spec.contracts import is_commutative, set_checking

    violations = []
    for node in system.nodes.values():
        if node.state != "active" or node.completed_offset != 0:
            continue
        # object uid -> (previous commutative op, state before it)
        pending: dict[str, tuple[PrimitiveOp, dict[str, object]]] = {}
        previous = set_checking(False)
        try:
            for index, entry, op, obj, tainted in _fresh_replicas(node):
                marked = is_commutative(type(obj), op.method_name)
                pre_state = _public_state(obj) if marked else None
                pair = pending.pop(op.object_id, None)
                if pair is not None and marked:
                    prior_op, prior_pre = pair
                    forward = _reexecute(type(obj), prior_pre, prior_op, op)
                    reverse = _reexecute(type(obj), prior_pre, op, prior_op)
                    if forward is None or reverse is None:
                        tainted.add(op.object_id)
                        continue
                    (res_ab, state_ab), (res_ba, state_ba) = forward, reverse
                    if state_ab != state_ba or [res_ab[0], res_ab[1]] != [
                        res_ba[1],
                        res_ba[0],
                    ]:
                        violations.append(
                            f"commutativity violation on {node.machine_id} at "
                            f"global position {index}: {prior_op.describe()} "
                            f"and {op.describe()} are both marked "
                            "@commutative but do not commute "
                            f"(state {state_ab!r} vs {state_ba!r})"
                        )
                        tainted.add(op.object_id)
                        continue
                try:
                    getattr(obj, op.method_name)(*op.args)
                except Exception:
                    tainted.add(op.object_id)
                    continue
                if marked:
                    pending[op.object_id] = (op, pre_state)
        finally:
            set_checking(previous)
    return violations
