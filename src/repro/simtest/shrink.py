"""Greedy scenario minimization.

A failing fuzz scenario is rarely a good bug report: five machines,
a dozen faults, ninety virtual seconds.  The shrinker repeatedly tries
structural simplifications — drop one fault/churn event, remove the
highest-numbered machine, halve the duration, flatten the pipeline,
shrink the workload — re-running the scenario after each candidate and
keeping it only if it *still fails*.  Like delta debugging, this loops
to a fixpoint; unlike Hypothesis-style shrinking it works on the
declarative :class:`~repro.simtest.scenario.ScenarioSpec`, so every
intermediate candidate is a valid, directly replayable scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator

from repro.simtest.runner import run_scenario
from repro.simtest.scenario import ScenarioSpec, machine_name


@dataclass
class ShrinkResult:
    """The minimized scenario plus how much work it took."""

    original: ScenarioSpec
    minimized: ScenarioSpec
    violations: list[str]
    runs: int


def _without_index(items: tuple, index: int) -> tuple:
    return items[:index] + items[index + 1 :]


def _drop_one_fault(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Every spec with exactly one fault/churn element removed."""
    for fault_field in ("churn", "commit_crashes", "partitions", "crashes", "drops"):
        items = getattr(spec, fault_field)
        for index in range(len(items)):
            yield replace(spec, **{fault_field: _without_index(items, index)})


def _references(spec_item, machine: str) -> bool:
    groups = getattr(spec_item, "groups", None)
    if groups is not None:
        return any(machine in group for group in groups)
    return getattr(spec_item, "machine", None) == machine or getattr(
        spec_item, "recipient", None
    ) == machine


def _drop_last_machine(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Remove the highest-numbered machine and every fault naming it."""
    if spec.n_machines <= 2:
        return
    victim = machine_name(spec.n_machines)
    yield replace(
        spec,
        n_machines=spec.n_machines - 1,
        drops=tuple(d for d in spec.drops if not _references(d, victim)),
        crashes=tuple(c for c in spec.crashes if not _references(c, victim)),
        partitions=tuple(p for p in spec.partitions if not _references(p, victim)),
        commit_crashes=tuple(
            c for c in spec.commit_crashes if not _references(c, victim)
        ),
        churn=tuple(c for c in spec.churn if not _references(c, victim)),
    )


def _shorten(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    """Halve the duration, discarding faults that no longer fit."""
    if spec.duration <= 10.0:
        return
    duration = round(max(10.0, spec.duration / 2.0), 2)
    margin = duration - 5.0
    yield replace(
        spec,
        duration=duration,
        drops=tuple(d for d in spec.drops if d.end <= margin),
        crashes=tuple(c for c in spec.crashes if c.end <= margin),
        partitions=tuple(p for p in spec.partitions if p.end <= margin),
        commit_crashes=tuple(
            c for c in spec.commit_crashes if c.recover_at <= margin
        ),
        churn=tuple(c for c in spec.churn if c.at + c.duration <= margin),
    )


def _simplify_knobs(spec: ScenarioSpec) -> Iterator[ScenarioSpec]:
    if spec.pipeline_depth > 1:
        yield replace(spec, pipeline_depth=1)
    if spec.n_grids > 1:
        yield replace(spec, n_grids=1)
    if spec.snapshot_interval != 0:
        yield replace(spec, snapshot_interval=0)
    if spec.batch_max_ops != 64:
        yield replace(spec, batch_max_ops=64)


#: Candidate generators, coarsest first (big cuts before knob tweaks).
PASSES: tuple[Callable[[ScenarioSpec], Iterator[ScenarioSpec]], ...] = (
    _drop_last_machine,
    _shorten,
    _drop_one_fault,
    _simplify_knobs,
)


def shrink(
    spec: ScenarioSpec,
    mutation: str | None = None,
    max_runs: int = 150,
) -> ShrinkResult:
    """Minimize ``spec`` while it keeps producing violations.

    ``spec`` must already fail (under ``mutation``, if given); the
    result is a local minimum — no single candidate simplification of
    the minimized spec still fails — or wherever the ``max_runs``
    budget ran out.
    """
    current = spec
    violations = run_scenario(current, record_trace=False, mutation=mutation).violations
    if not violations:
        raise ValueError("shrink() needs a failing scenario to start from")
    runs = 1
    improved = True
    while improved and runs < max_runs:
        improved = False
        for candidate_pass in PASSES:
            for candidate in candidate_pass(current):
                if runs >= max_runs:
                    break
                attempt = run_scenario(candidate, record_trace=False, mutation=mutation)
                runs += 1
                if attempt.violations:
                    current = candidate
                    violations = attempt.violations
                    improved = True
                    break  # restart passes from the new, smaller spec
            if improved:
                break
    return ShrinkResult(
        original=spec, minimized=current, violations=violations, runs=runs
    )
