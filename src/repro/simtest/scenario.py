"""Scenario generation: one integer seed → one complete chaos scenario.

A :class:`ScenarioSpec` is a *declarative*, JSON-serializable
description of everything a simulation run needs: cluster size, sync
pipeline shape (:class:`~repro.runtime.config.SyncConfig` knobs),
workload mix, a fault plan (drops, crashes, partitions, crashes at
commit points) and a churn plan (joins, offline excursions, hard kills
with recover-and-rejoin).  :func:`generate_scenario` derives a spec
from a seed through named :class:`~repro.sim.rand.SeededSource`
streams, so the same seed always yields the same spec — and because
the spec is plain data, the shrinker can minimize it field by field
without touching the generator.

Only *slave* machines are ever faulted: the reproduction's master has
no failover by default (matching the paper), so faulting it would turn
every scenario into a wedge rather than a recovery exercise.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.net.faults import (
    CommitCrashPlan,
    CrashPlan,
    DropPlan,
    PartitionPlan,
    ScheduledFaults,
)
from repro.sim.rand import SeededSource

#: Signal payload types a DropPlan may target (None = any payload).
DROPPABLE_PAYLOADS = (
    None,
    "YourTurn",
    "BeginApply",
    "FlushDone",
    "SyncComplete",
    "OpBatch",
    "Hello",
    "Welcome",
)

#: All scenario workloads: the paper's two measurement workloads plus
#: the workload zoo (see :mod:`repro.simtest.workload`).
WORKLOADS = ("sudoku", "board", "listdoc", "counters", "market", "hostile")

#: Per-workload draw ranges: (think_mean lo/hi, n_grids lo/hi).  The
#: ``n_grids`` knob is overloaded per workload — Sudoku grids, board
#: topics, shared docs, counter pots, items stocked per trader — so the
#: spec shape (and the shrinker) stays workload-agnostic.
_WORKLOAD_PARAMS = {
    "sudoku": ((1.5, 4.0), (1, 2)),
    "board": ((0.8, 2.5), (2, 4)),
    "listdoc": ((0.8, 2.5), (1, 3)),
    "counters": ((0.6, 2.0), (2, 4)),
    "market": ((1.0, 2.5), (2, 3)),
    "hostile": ((0.6, 1.8), (1, 2)),
}


def machine_name(index: int) -> str:
    """Machine ids as the runtime builds them: m01, m02, ..."""
    return f"m{index:02d}"


@dataclass(frozen=True)
class DropSpec:
    """A bounded message-loss window (maps to ``DropPlan``)."""

    start: float
    end: float
    payload_type: str | None = None
    recipient: str | None = None
    max_drops: int = 1


@dataclass(frozen=True)
class CrashSpec:
    """A machine is network-unresponsive during [start, end)."""

    machine: str
    start: float
    end: float


@dataclass(frozen=True)
class PartitionSpec:
    """The network splits into two groups during [start, end)."""

    groups: tuple[tuple[str, ...], ...]
    start: float
    end: float


@dataclass(frozen=True)
class CommitCrashSpec:
    """Hard-kill ``machine`` at its next commit point (mid-pipeline
    with ``pipeline_depth > 1``); ``recover_at`` schedules the
    recover-and-rejoin if the crash has fired by then."""

    machine: str
    recover_at: float


@dataclass(frozen=True)
class ChurnSpec:
    """One membership event.

    ``kind``: ``join`` (a new machine enters mid-run), ``offline`` (a
    slave disconnects, keeps working locally, returns after
    ``duration``), or ``halt`` (hard kill, recover-and-rejoin after
    ``duration``).  ``machine`` is empty for ``join``.
    """

    kind: str
    at: float
    machine: str = ""
    duration: float = 0.0


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything one deterministic simulation run needs."""

    seed: int
    n_machines: int
    collection: str
    batch_max_ops: int
    pipeline_depth: int
    sync_interval: float
    stall_timeout: float
    snapshot_interval: int
    workload: str
    think_mean: float
    n_grids: int
    duration: float
    drops: tuple[DropSpec, ...] = ()
    crashes: tuple[CrashSpec, ...] = ()
    partitions: tuple[PartitionSpec, ...] = ()
    commit_crashes: tuple[CommitCrashSpec, ...] = ()
    churn: tuple[ChurnSpec, ...] = ()
    #: hot-path levers (concurrent collection only): pre-announced
    #: StartSync, streaming speculative apply, flush compaction
    scheduled_rounds: bool = False
    speculative_apply: bool = False
    compact_flush: bool = False

    def fault_count(self) -> int:
        return (
            len(self.drops)
            + len(self.crashes)
            + len(self.partitions)
            + len(self.commit_crashes)
            + len(self.churn)
        )

    # -- persistence (failing-seed artifacts) ------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        return cls(
            seed=data["seed"],
            n_machines=data["n_machines"],
            collection=data["collection"],
            batch_max_ops=data["batch_max_ops"],
            pipeline_depth=data["pipeline_depth"],
            sync_interval=data["sync_interval"],
            stall_timeout=data["stall_timeout"],
            snapshot_interval=data["snapshot_interval"],
            workload=data["workload"],
            think_mean=data["think_mean"],
            n_grids=data["n_grids"],
            duration=data["duration"],
            drops=tuple(DropSpec(**item) for item in data.get("drops", ())),
            crashes=tuple(CrashSpec(**item) for item in data.get("crashes", ())),
            partitions=tuple(
                PartitionSpec(
                    groups=tuple(tuple(group) for group in item["groups"]),
                    start=item["start"],
                    end=item["end"],
                )
                for item in data.get("partitions", ())
            ),
            commit_crashes=tuple(
                CommitCrashSpec(**item) for item in data.get("commit_crashes", ())
            ),
            churn=tuple(ChurnSpec(**item) for item in data.get("churn", ())),
            scheduled_rounds=data.get("scheduled_rounds", False),
            speculative_apply=data.get("speculative_apply", False),
            compact_flush=data.get("compact_flush", False),
        )


def generate_scenario(seed: int, workload: str | None = None) -> ScenarioSpec:
    """Derive the complete scenario for ``seed`` (pure and stable).

    ``workload`` pins the workload instead of drawing it, so sweeps can
    cover each zoo member with the same seed range; ``(seed, workload)``
    is just as deterministic as a bare seed.
    """
    if workload is not None and workload not in WORKLOADS:
        raise ValueError(f"unknown workload {workload!r}; known: {WORKLOADS}")
    seeds = SeededSource(seed)
    topo = seeds.stream("topology")
    sync = seeds.stream("sync")
    work = seeds.stream("workload")
    faults = seeds.stream("faults")
    churn_rng = seeds.stream("churn")

    n_machines = topo.randint(2, 5)
    slaves = [machine_name(i) for i in range(2, n_machines + 1)]
    duration = round(topo.uniform(40.0, 75.0), 2)

    collection = sync.choice(["sequential", "concurrent"])
    batch_max_ops = sync.choice([1, 2, 4, 8, 64])
    pipeline_depth = sync.choice([1, 2, 2, 3])
    sync_interval = round(sync.uniform(0.4, 1.0), 3)
    stall_timeout = round(sync.uniform(2.0, 4.0), 3)
    snapshot_interval = sync.choice([0, 2, 4, 8])
    # Hot-path levers: only meaningful under concurrent collection, but
    # always drawn so the stream stays aligned across spec mutations.
    scheduled_rounds = sync.random() < 0.5
    speculative_apply = sync.random() < 0.5
    compact_flush = sync.random() < 0.5

    if workload is None:
        workload = work.choice(list(WORKLOADS))
    (think_lo, think_hi), (grids_lo, grids_hi) = _WORKLOAD_PARAMS[workload]
    think_mean = round(work.uniform(think_lo, think_hi), 3)
    n_grids = work.randint(grids_lo, grids_hi)

    # -- fault plan (slaves only; windows end well before the drain) ----------
    drops = []
    for _ in range(faults.randint(0, 3)):
        start = round(faults.uniform(5.0, max(6.0, duration - 25.0)), 2)
        drops.append(
            DropSpec(
                start=start,
                end=round(start + faults.uniform(2.0, 10.0), 2),
                payload_type=faults.choice(list(DROPPABLE_PAYLOADS)),
                recipient=faults.choice([None] + slaves) if slaves else None,
                max_drops=faults.randint(1, 3),
            )
        )

    crashes = []
    crash_targets = list(slaves)
    faults.shuffle(crash_targets)
    for target in crash_targets[: faults.randint(0, min(2, len(crash_targets)))]:
        start = round(faults.uniform(5.0, max(6.0, duration - 30.0)), 2)
        crashes.append(
            CrashSpec(
                machine=target,
                start=start,
                end=round(start + faults.uniform(5.0, 12.0), 2),
            )
        )

    partitions = []
    if n_machines >= 3 and faults.random() < 0.4:
        cut = faults.randint(1, len(slaves) - 1)
        minority = tuple(sorted(faults.sample(slaves, cut)))
        majority = tuple(
            [machine_name(1)] + sorted(set(slaves) - set(minority))
        )
        start = round(faults.uniform(5.0, max(6.0, duration - 35.0)), 2)
        partitions.append(
            PartitionSpec(
                groups=(majority, minority),
                start=start,
                end=round(start + faults.uniform(8.0, 15.0), 2),
            )
        )

    commit_crashes = []
    if slaves and faults.random() < 0.5:
        commit_crashes.append(
            CommitCrashSpec(
                machine=faults.choice(slaves),
                recover_at=round(faults.uniform(15.0, max(16.0, duration - 15.0)), 2),
            )
        )

    # -- churn plan (distinct targets so events compose cleanly) --------------
    churn = []
    churn_targets = list(slaves)
    churn_rng.shuffle(churn_targets)
    for _ in range(churn_rng.randint(0, 2)):
        kind = churn_rng.choice(["join", "offline", "halt"])
        if kind == "join":
            churn.append(
                ChurnSpec(
                    kind="join",
                    at=round(churn_rng.uniform(10.0, max(11.0, duration - 20.0)), 2),
                )
            )
        elif churn_targets:
            target = churn_targets.pop()
            at = round(churn_rng.uniform(10.0, max(11.0, duration - 32.0)), 2)
            churn.append(
                ChurnSpec(
                    kind=kind,
                    at=at,
                    machine=target,
                    duration=round(churn_rng.uniform(8.0, 16.0), 2),
                )
            )

    return ScenarioSpec(
        seed=seed,
        n_machines=n_machines,
        collection=collection,
        batch_max_ops=batch_max_ops,
        pipeline_depth=pipeline_depth,
        sync_interval=sync_interval,
        stall_timeout=stall_timeout,
        snapshot_interval=snapshot_interval,
        workload=workload,
        think_mean=think_mean,
        n_grids=n_grids,
        duration=duration,
        drops=tuple(drops),
        crashes=tuple(crashes),
        partitions=tuple(partitions),
        commit_crashes=tuple(commit_crashes),
        churn=tuple(churn),
        scheduled_rounds=scheduled_rounds,
        speculative_apply=speculative_apply,
        compact_flush=compact_flush,
    )


def build_faults(spec: ScenarioSpec, offset: float = 0.0) -> ScheduledFaults:
    """Materialize the spec's fault plan as a fresh injector.

    Spec times are relative to the end of workload setup; the runner
    passes the virtual time at that point as ``offset`` so fault
    windows never disturb the initial object creation and join phase.
    """
    return ScheduledFaults(
        drops=[
            DropPlan(
                start=drop.start + offset,
                end=drop.end + offset,
                payload_type=drop.payload_type,
                recipient=drop.recipient,
                max_drops=drop.max_drops,
            )
            for drop in spec.drops
        ],
        crashes=[
            CrashPlan(
                machine_id=crash.machine,
                start=crash.start + offset,
                end=crash.end + offset,
            )
            for crash in spec.crashes
        ],
        partitions=[
            PartitionPlan(
                groups=part.groups,
                start=part.start + offset,
                end=part.end + offset,
            )
            for part in spec.partitions
        ],
        commit_crashes=[
            CommitCrashPlan(machine_id=crash.machine)
            for crash in spec.commit_crashes
        ],
    )
