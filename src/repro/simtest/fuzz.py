"""The fuzzer's top-level verbs: sweep seeds, replay one, self-test.

``run_seeds`` is the nightly driver: generate-and-run a range of
seeds, collect violations, and (optionally) write each failing seed's
scenario spec and full trace as JSONL artifacts a colleague can replay.
``replay`` runs one seed twice and insists the traces are
byte-identical — the determinism guarantee the whole subsystem rests
on.  ``selftest`` is the fuzzer fuzzing itself: inject a known
protocol mutation, check a violation is reported, the failing seed
replays bit-identically, and the shrinker cuts the scenario down.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field

from repro.simtest.runner import RunResult, run_scenario
from repro.simtest.scenario import generate_scenario
from repro.simtest.shrink import ShrinkResult, shrink


@dataclass
class SeedOutcome:
    seed: int
    violations: list[str]
    committed_total: int
    actions: int
    virtual_end: float
    trace_digest: str | None = None


@dataclass
class FuzzReport:
    """What a seed sweep found."""

    seeds_run: int = 0
    failures: list[SeedOutcome] = field(default_factory=list)
    outcomes: list[SeedOutcome] = field(default_factory=list)
    stopped_early: bool = False  # wall-clock budget exhausted

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class ReplayReport:
    """Two runs of one seed, compared record by record."""

    seed: int
    identical: bool
    digest: str
    first_divergence: int | None
    violations: list[str]


def _write_failure_artifacts(trace_dir: str, outcome: SeedOutcome, result: RunResult) -> None:
    os.makedirs(trace_dir, exist_ok=True)
    base = os.path.join(trace_dir, f"seed-{outcome.seed}")
    with open(base + ".json", "w", encoding="utf-8") as handle:
        json.dump(
            {
                "seed": outcome.seed,
                "spec": result.spec.to_dict(),
                "violations": outcome.violations,
                "trace_digest": outcome.trace_digest,
            },
            handle,
            indent=2,
            sort_keys=True,
        )
    if result.trace is not None:
        with open(base + ".trace.jsonl", "w", encoding="utf-8") as handle:
            handle.write(result.trace.to_jsonl())


def run_seeds(
    n_seeds: int,
    start: int = 0,
    max_time: float | None = None,
    mutation: str | None = None,
    trace_dir: str | None = None,
    record_traces: bool = True,
    progress=None,
    workload: str | None = None,
    force_compaction: bool = False,
) -> FuzzReport:
    """Fuzz seeds ``start .. start+n_seeds-1``.

    ``max_time`` bounds *wall-clock* seconds (for CI smoke jobs); the
    sweep stops cleanly after the scenario that crosses the budget.
    Failing seeds get ``seed-<n>.json`` + ``seed-<n>.trace.jsonl``
    artifacts under ``trace_dir`` if one is given.  ``workload`` pins
    every scenario to one workload (zoo coverage sweeps).
    ``force_compaction`` overrides every scenario to run with flush
    compaction on (the ``--compact`` CI sweep: the refresh oracle then
    cross-checks compacted rounds seed by seed).
    """
    report = FuzzReport()
    clock_start = time.monotonic()
    for seed in range(start, start + n_seeds):
        if max_time is not None and time.monotonic() - clock_start > max_time:
            report.stopped_early = True
            break
        spec = generate_scenario(seed, workload=workload)
        if force_compaction:
            spec = dataclasses.replace(spec, compact_flush=True)
        result = run_scenario(spec, record_trace=record_traces, mutation=mutation)
        outcome = SeedOutcome(
            seed=seed,
            violations=result.violations,
            committed_total=result.committed_total,
            actions=result.actions,
            virtual_end=result.virtual_end,
            trace_digest=result.trace.digest() if result.trace is not None else None,
        )
        report.seeds_run += 1
        report.outcomes.append(outcome)
        if result.violations:
            report.failures.append(outcome)
            if trace_dir is not None:
                _write_failure_artifacts(trace_dir, outcome, result)
        if progress is not None:
            progress(outcome)
    return report


def replay(
    seed: int, mutation: str | None = None, workload: str | None = None
) -> ReplayReport:
    """Run ``seed`` twice; identical traces or it's a determinism bug."""
    spec = generate_scenario(seed, workload=workload)
    first = run_scenario(spec, record_trace=True, mutation=mutation)
    second = run_scenario(spec, record_trace=True, mutation=mutation)
    assert first.trace is not None and second.trace is not None
    divergence = first.trace.first_divergence(second.trace)
    return ReplayReport(
        seed=seed,
        identical=divergence is None,
        digest=first.trace.digest(),
        first_divergence=divergence,
        violations=first.violations,
    )


@dataclass
class SelftestReport:
    """Evidence the fuzzer can actually catch a protocol bug."""

    mutation: str
    caught_seed: int | None
    violations: list[str]
    replay_identical: bool
    shrink: ShrinkResult | None

    @property
    def ok(self) -> bool:
        return (
            self.caught_seed is not None
            and self.replay_identical
            and self.shrink is not None
            and self.shrink.minimized.n_machines <= 3
        )


def selftest(
    mutation: str = "commit_order",
    max_seeds: int = 20,
    workload: str | None = None,
) -> SelftestReport:
    """Inject ``mutation`` and prove the pipeline catches it end to end."""
    caught: int | None = None
    violations: list[str] = []
    for seed in range(max_seeds):
        result = run_scenario(
            generate_scenario(seed, workload=workload),
            record_trace=False,
            mutation=mutation,
        )
        if result.violations:
            caught = seed
            violations = result.violations
            break
    if caught is None:
        return SelftestReport(mutation, None, [], False, None)
    replay_report = replay(caught, mutation=mutation, workload=workload)
    shrunk = shrink(generate_scenario(caught, workload=workload), mutation=mutation)
    return SelftestReport(
        mutation=mutation,
        caught_seed=caught,
        violations=violations,
        replay_identical=replay_report.identical,
        shrink=shrunk,
    )
