"""Runtime-vs-semantics validation (paper section 4, "Conformance to
the operational semantics").

The paper argues a simulation relation between the runtime's
transitions and rules R1-R3.  We mechanize the checkable core of that
argument against a finished :class:`~repro.runtime.system.DistributedSystem`:

1. **R3 faithfulness** — every machine recorded the same committed
   sequence (same keys, same order, same boolean results); replaying
   that sequence from the initial state through the *reference*
   executor reproduces each machine's committed store exactly.
2. **R2 faithfulness** — every committed operation that was issued
   locally passed its guard at issue time (ops that fail at issue are
   dropped and must never reach C).
3. **Quiescent convergence** — each guesstimated store equals the
   committed store once pending queues are empty.

Any discrepancy raises :class:`SimulationError` with a description.
"""

from __future__ import annotations

from repro.core.store import ObjectStore
from repro.errors import SimulationError
from repro.runtime.system import DistributedSystem


def replay_check(system: DistributedSystem) -> int:
    """Validate a quiesced system against the semantics; returns |C|.

    Call only at a quiescent point (e.g. after
    ``system.run_until_quiesced()``); mid-round states legitimately
    violate the checks.
    """
    if not system.quiesced():
        raise SimulationError("replay_check requires a quiesced system")

    nodes = [node for node in system.active_nodes() if node.completed_offset == 0]
    if not nodes:
        raise SimulationError("no machine observed the full committed sequence")

    # 1a. Same committed sequence everywhere (keys, order, results).
    reference = [
        (entry.key, entry.result) for entry in nodes[0].model.completed
    ]
    for node in nodes[1:]:
        observed = [(entry.key, entry.result) for entry in node.model.completed]
        if observed != reference:
            raise SimulationError(
                f"committed sequences differ: {nodes[0].machine_id} vs "
                f"{node.machine_id}"
            )

    # 1b. Operation keys are globally unique (a machine must never
    #     reuse a number, even across restarts — a real bug this check
    #     caught during development).
    keys = [key for key, _result in reference]
    if len(keys) != len(set(keys)):
        raise SimulationError("committed sequence contains duplicate op keys")

    # 1c. Replay the sequence through the reference executor.
    oracle = ObjectStore("oracle")
    for index, entry in enumerate(nodes[0].model.completed):
        result = entry.op.execute(oracle)
        if result != entry.result:
            raise SimulationError(
                f"replay diverged at position {index} ({entry.key}): "
                f"runtime recorded {entry.result}, oracle got {result}"
            )
    for node in nodes:
        if not oracle.state_equal(node.model.committed):
            raise SimulationError(
                f"committed store of {node.machine_id} differs from the "
                "oracle replay"
            )

    # 2. Every locally-issued committed op passed its issue guard
    #    (the runtime drops guard failures before they reach P).
    for node in system.active_nodes():
        issued_keys = {
            key
            for key, count in node.metrics.executions.items()
            if key.machine_id == node.machine_id
        }
        committed_local = {
            entry.key
            for entry in node.model.completed
            if entry.key.machine_id == node.machine_id
        }
        unknown = committed_local - issued_keys
        # Keys issued before a restart are legitimately forgotten.
        if unknown and node.metrics.restarts == 0:
            raise SimulationError(
                f"{node.machine_id} committed operations it never issued: "
                f"{sorted(map(str, unknown))[:5]}"
            )

    # 3. Quiescent convergence: sg = sc on every machine.
    for node in system.active_nodes():
        if not node.model.guess.state_equal(node.model.committed):
            raise SimulationError(
                f"guesstimated state of {node.machine_id} did not converge"
            )

    return len(reference)
