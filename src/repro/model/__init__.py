"""Model checking over the operational semantics.

Two tools:

* :class:`~repro.model.checker.ModelChecker` — bounded exhaustive
  exploration of every interleaving of R2 (issues, in per-machine
  program order) and R3 (commits), verifying the paper's invariants on
  every reachable state and agreement + convergence on every terminal
  state.  This is the mechanized version of the paper's "these
  invariants can be proved by induction over the transition rules".
* :func:`~repro.model.simulation_relation.replay_check` — validates the
  *runtime* against the semantics: the committed sequence recorded by
  the runtime, replayed through the reference interpreter, must
  reproduce the runtime's committed stores and per-operation results
  (the simulation-relation argument of paper section 4).
"""

from repro.model.checker import CheckResult, ModelChecker
from repro.model.simulation_relation import replay_check

__all__ = ["CheckResult", "ModelChecker", "replay_check"]
