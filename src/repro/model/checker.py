"""Bounded exhaustive exploration of the operational semantics.

The nondeterminism in GUESSTIMATE is (a) how machine issue streams
interleave and (b) when pending operations commit relative to
everything else.  Given per-machine scripts of composite operations,
:class:`ModelChecker` explores *every* interleaving of rule
applications, deduplicating states, and checks:

* the paper's invariants on every reachable state
  (``[P](sc) = sg``, identical ``C``/``sc`` everywhere);
* on terminal states (all scripts exhausted, all queues empty):
  quiescent convergence ``sg = sc`` on every machine.

State spaces are exponential in script length, so keep scripts short
(2-3 machines x 2-3 ops explores tens of thousands of states in well
under a second).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.semantics.invariants import check_all
from repro.semantics.rules import commit_step, enabled_commits, issue_composite
from repro.semantics.state import CompositeOp, SharedValue, SystemState, make_system

#: A node in the exploration graph: the semantics state plus each
#: machine's position in its script.
ExplorationNode = tuple[SystemState, tuple[int, ...]]


@dataclass
class CheckResult:
    """Outcome of an exhaustive exploration."""

    states_explored: int
    terminal_states: int
    max_frontier: int
    violations: list[str] = field(default_factory=list)
    #: Distinct final shared values across all interleavings (commit
    #: order is nondeterministic, so there can legitimately be several;
    #: what must *never* vary is agreement within one terminal state).
    final_shared_values: set[SharedValue] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations


class ModelChecker:
    """Exhaustive interleaving exploration with invariant checking."""

    def __init__(self, max_states: int = 2_000_000):
        self.max_states = max_states

    def explore(
        self,
        n_machines: int,
        initial_shared: SharedValue,
        scripts: dict[int, list[CompositeOp]],
        fail_fast: bool = True,
    ) -> CheckResult:
        """Explore every interleaving of the given scripts.

        ``scripts`` maps machine index to its (ordered) list of
        composite operations; machines without a script issue nothing.
        """
        for machine in scripts:
            if not 0 <= machine < n_machines:
                raise SimulationError(f"script for unknown machine {machine}")
        script_tuple = tuple(
            tuple(scripts.get(machine, ())) for machine in range(n_machines)
        )

        initial: ExplorationNode = (
            make_system(n_machines, initial_shared),
            tuple(0 for _ in range(n_machines)),
        )
        seen: set[ExplorationNode] = {initial}
        frontier: list[ExplorationNode] = [initial]
        result = CheckResult(states_explored=0, terminal_states=0, max_frontier=1)

        while frontier:
            result.max_frontier = max(result.max_frontier, len(frontier))
            state, cursors = frontier.pop()
            result.states_explored += 1
            if result.states_explored > self.max_states:
                raise SimulationError(
                    f"state space exceeds max_states={self.max_states}"
                )

            violated = check_all(state)
            if violated:
                result.violations.append(
                    f"at cursors {cursors}: {violated}"
                )
                if fail_fast:
                    return result

            successors = self._successors(state, cursors, script_tuple)
            if not successors:
                result.terminal_states += 1
                self._check_terminal(state, cursors, result)
                continue
            for node in successors:
                if node not in seen:
                    seen.add(node)
                    frontier.append(node)
        return result

    # -- internal ---------------------------------------------------------------

    def _successors(
        self,
        state: SystemState,
        cursors: tuple[int, ...],
        scripts: tuple[tuple[CompositeOp, ...], ...],
    ) -> list[ExplorationNode]:
        successors: list[ExplorationNode] = []
        # R2: each machine may issue its next scripted operation.
        for machine, script in enumerate(scripts):
            position = cursors[machine]
            if position >= len(script):
                continue
            new_state, _issued = issue_composite(state, machine, script[position])
            # Whether issued or dropped, program order advances.
            new_cursors = (
                cursors[:machine] + (position + 1,) + cursors[machine + 1 :]
            )
            successors.append((new_state, new_cursors))
        # R3: any machine with a pending operation may commit its head.
        for machine in enabled_commits(state):
            next_state = commit_step(state, machine)
            assert next_state is not None
            successors.append((next_state, cursors))
        return successors

    def _check_terminal(
        self, state: SystemState, cursors: tuple[int, ...], result: CheckResult
    ) -> None:
        if any(machine.pending for machine in state):  # pragma: no cover
            result.violations.append(
                f"terminal state at {cursors} still has pending operations"
            )
            return
        shared_values = {machine.sc for machine in state}
        guess_values = {machine.sg for machine in state}
        if len(shared_values) != 1 or guess_values != shared_values:
            result.violations.append(
                f"terminal state at {cursors} did not converge: "
                f"sc={shared_values} sg={guess_values}"
            )
            return
        result.final_shared_values.add(next(iter(shared_values)))
