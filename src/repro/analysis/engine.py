"""Orchestration: load sources, build the index, run rules, suppress.

Suppression happens in two layers, applied in order:

1. **pragmas** — a ``# glint: ignore`` (all rules) or
   ``# glint: ignore[GL002]`` / ``# glint: ignore[GL001, GL002]``
   comment on the finding's line *or* on one of its registered pragma
   lines (typically the enclosing ``def``).  Pragmas are for findings a
   human has judged and justified in place;
2. **baseline** — the committed ``glint-baseline.json`` of accepted
   pre-existing findings, keyed by ``(rule, path, symbol)``.  The
   baseline is for adopting the tool on an imperfect tree without a
   flag day.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.context import build_context
from repro.analysis.loader import SourceModule, load_paths
from repro.analysis.report import Baseline, Finding, Report
from repro.analysis.rules.base import rules_for

_PRAGMA = re.compile(r"#\s*glint:\s*ignore(?:\[(?P<rules>[^\]]*)\])?")


def pragma_suppresses(line: str, rule_id: str) -> bool:
    """True if ``line`` carries a pragma that silences ``rule_id``."""
    match = _PRAGMA.search(line)
    if match is None:
        return False
    rules = match.group("rules")
    if rules is None:
        return True  # bare ``# glint: ignore`` silences every rule
    return rule_id in {part.strip() for part in rules.split(",")}


def _suppressed(finding: Finding, module: SourceModule) -> bool:
    for lineno in (finding.line, *finding.pragma_lines):
        if pragma_suppresses(module.line(lineno), finding.rule):
            return True
    return False


def analyze_modules(
    modules: list[SourceModule],
    rule_ids: list[str] | None = None,
    baseline: Baseline | None = None,
) -> Report:
    """Run the selected rules over already-loaded modules."""
    rules = rules_for(rule_ids)
    context = build_context(modules)
    report = Report(
        files_analyzed=len(modules), rules_run=[rule.id for rule in rules]
    )
    by_path = {module.display_path: module for module in modules}
    seen: set[tuple] = set()
    for rule in rules:
        for module in modules:
            for finding in rule.check(module, context):
                key = (finding.rule, finding.path, finding.line, finding.col,
                       finding.symbol, finding.message)
                if key in seen:
                    continue
                seen.add(key)
                if _suppressed(finding, by_path[finding.path]):
                    report.suppressed_by_pragma += 1
                    continue
                report.findings.append(finding)
    report.sort()
    if baseline is not None:
        baseline.apply(report)
    return report


def analyze_paths(
    paths: list[str | Path],
    rule_ids: list[str] | None = None,
    baseline: Baseline | None = None,
    root: str | Path | None = None,
) -> Report:
    """Load ``paths`` (files or directories) and analyze them."""
    modules = load_paths(paths, root=root)
    return analyze_modules(modules, rule_ids=rule_ids, baseline=baseline)
