"""GL008 — spec predicates must not read state outside the frame.

An operation executes up to three times (guess-apply at issue,
committed-apply at its round, refresh re-execution), and its
``requires``/``ensures`` predicates are evaluated around *each* run.
Between those runs, other machines' operations commit.  State inside
the op's own ``@modifies`` frame is what the op coordinates on — the
conflict machinery and the frame check watch it.  State *outside* the
frame is a hidden read dependency: a predicate that consults it can
pass at issue time and fail at commit time (or the reverse) purely
because an unrelated commit landed in between, turning the op's
outcome into a race the static frame never admitted to.

This rule resolves each framed operation's ``requires``/``ensures``
predicate (lambda or module-level ``def``, the GL004 convention) and
flags every read of ``self.<attr>`` — or, for ``ensures``, of
``old["<attr>"]`` / ``old.get("<attr>")`` — where ``<attr>`` is a
known attribute of the class that the frame does not declare.
Frameless methods are skipped (no frame, no mismatch to certify), as
are reads of names that are not attributes of the class (GL004's
territory).
"""

from __future__ import annotations

import ast

from repro.analysis.context import ProjectContext, SpecBinding
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register
from repro.analysis.rules.gl004_specs import _predicate_signature


def _spec_reads(
    node: ast.Lambda | ast.FunctionDef, params: list[str], kind: str
) -> set[str]:
    """Attribute names a predicate body reads off self / old."""
    self_name = params[1] if kind == "ensures" else params[0] if params else None
    old_name = params[0] if kind == "ensures" else None
    body: ast.AST = node.body if isinstance(node, ast.Lambda) else node
    reads: set[str] = set()
    for sub in ast.walk(body):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == self_name
            and isinstance(sub.ctx, ast.Load)
        ):
            reads.add(sub.attr)
        elif (
            old_name is not None
            and isinstance(sub, ast.Subscript)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == old_name
            and isinstance(sub.slice, ast.Constant)
            and isinstance(sub.slice.value, str)
        ):
            reads.add(sub.slice.value)
        elif (
            old_name is not None
            and isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "get"
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == old_name
            and sub.args
            and isinstance(sub.args[0], ast.Constant)
            and isinstance(sub.args[0].value, str)
        ):
            reads.add(sub.args[0].value)
    return reads


@register
class SpecReadRule(Rule):
    id = "GL008"
    title = "requires/ensures predicate reads state outside the @modifies frame"
    rationale = (
        "ops run up to three times with foreign commits in between; a "
        "spec reading unframed state can flip verdicts mid-pipeline"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        for info in context.shared_classes.values():
            if info.module is not module:
                continue
            for spec in info.specs:
                if spec.kind not in ("requires", "ensures"):
                    continue
                finding = self._check_spec(module, info, spec)
                findings.extend(finding)
        return findings

    def _check_spec(self, module, info, spec: SpecBinding) -> list[Finding]:
        method_name = spec.owner.rsplit(".", 1)[-1]
        method = info.methods.get(method_name)
        if method is None or method.modifies is None:
            return []  # frameless: nothing declared to mismatch
        resolved = _predicate_signature(spec.predicate, module)
        if resolved is None:
            return []
        node, params, _defaults = resolved
        frame = set(method.modifies)
        reads = _spec_reads(node, params, spec.kind)
        out: list[Finding] = []
        for attr in sorted(reads):
            if attr in frame or attr not in info.init_attrs:
                continue
            out.append(
                self.finding(
                    module,
                    spec.predicate,
                    spec.owner,
                    f"{spec.kind} predicate reads {attr!r}, which is "
                    f"outside the @modifies frame "
                    f"({', '.join(map(repr, sorted(frame)))}) — a foreign "
                    f"commit between executions can flip this predicate "
                    f"mid-pipeline",
                    extra_pragma_lines=(spec.lineno,),
                )
            )
        return out
