"""Per-rule visitor base and the rule registry."""

from __future__ import annotations

import ast

from repro.analysis.context import ProjectContext
from repro.analysis.loader import AnalysisUsageError, SourceModule
from repro.analysis.report import Finding

#: registration order == listing order
ALL_RULES: list["Rule"] = []


class Rule:
    """One checker.  Subclasses set ``id``/``title``/``rationale`` and
    implement :meth:`check`, returning findings for one module.

    The engine instantiates each rule once per run; rules may keep
    per-run state (GL005 does not, but a rule caching per-class work
    may).
    """

    id: str = "GL000"
    title: str = ""
    #: which paper restriction / runtime oracle this rule front-runs
    rationale: str = ""

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        raise NotImplementedError

    # -- helpers shared by every checker ------------------------------------

    def finding(
        self,
        module: SourceModule,
        node: ast.AST,
        symbol: str,
        message: str,
        extra_pragma_lines: tuple[int, ...] = (),
    ) -> Finding:
        return Finding(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            symbol=symbol,
            message=message,
            pragma_lines=extra_pragma_lines,
        )


def register(cls: type[Rule]) -> type[Rule]:
    ALL_RULES.append(cls())
    return cls


def rule_by_id(rule_id: str) -> Rule:
    for rule in ALL_RULES:
        if rule.id == rule_id:
            return rule
    raise AnalysisUsageError(
        f"unknown rule {rule_id!r}; known: {', '.join(r.id for r in ALL_RULES)}"
    )


def rules_for(rule_ids: list[str] | None) -> list[Rule]:
    if rule_ids is None:
        return list(ALL_RULES)
    return [rule_by_id(rule_id) for rule_id in rule_ids]
