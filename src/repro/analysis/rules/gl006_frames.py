"""GL006 — declared ``@modifies`` frames must equal inferred footprints.

GL002 checks the frame against *direct, syntactic* mutations inside
the operation body.  GL006 closes the two gaps that remain once the
effect engine can see the whole class:

* **under-declared** — the operation's inferred write footprint
  (including writes routed through ``self._helper(...)`` calls and
  helper-parameter aliases) touches an attribute the frame omits.  At
  runtime the refresh pipeline only re-snapshots ``mark_dirty``'d
  fields, so an under-declared write survives in the guess state and
  silently diverges from the committed rebuild.
* **over-declared** — the frame names an attribute the operation never
  writes on any path.  That is not a correctness bug, but every listed
  field joins the delta-refresh candidate set: over-declaring inflates
  the per-commit snapshot/restore work the PR 4 refresh optimization
  exists to avoid, and it poisons the interference matrix with
  phantom conflicts.

Methods whose footprint inference is incomplete (calls the engine
cannot resolve) are skipped entirely, and the over-declared arm is
additionally suppressed for *opaque* footprints (a mutation through an
unresolvable local may be a hidden write): this rule never accuses on
a guess.
"""

from __future__ import annotations

import ast

from repro.analysis.context import (
    LIFECYCLE_METHODS,
    MethodInfo,
    ProjectContext,
)
from repro.analysis.effects import effect_engine
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register


def modifies_decorator(method: MethodInfo) -> ast.expr | None:
    """The ``@modifies(...)`` decorator node of a framed method."""
    for dec in method.node.decorator_list:
        if isinstance(dec, ast.Call):
            func = dec.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name == "modifies":
                return dec
    return None


@register
class FrameFootprintRule(Rule):
    id = "GL006"
    title = "@modifies frame disagrees with the inferred write footprint"
    rationale = (
        "under-declared writes dodge mark_dirty and diverge the guess "
        "state; over-declared frames inflate delta-refresh candidate "
        "sets and fake interference"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        engine = effect_engine(context)
        for info in context.shared_classes.values():
            if info.module is not module:
                continue
            for name, method in sorted(info.methods.items()):
                if method.modifies is None or name in LIFECYCLE_METHODS:
                    continue
                footprint = engine.footprint(info.name, name)
                if not footprint.complete:
                    continue
                frame = set(method.modifies)
                symbol = f"{info.name}.{name}"
                for attr in sorted(set(footprint.writes) - frame):
                    kinds = ", ".join(sorted(footprint.writes[attr]))
                    findings.append(
                        self.finding(
                            module,
                            footprint.anchors[attr],
                            symbol,
                            f"under-declared frame: inferred write to "
                            f"{attr!r} ({kinds}) is missing from "
                            f"@modifies({', '.join(map(repr, sorted(frame)))}) "
                            f"— this write dodges mark_dirty",
                        )
                    )
                if not footprint.trusted:
                    # Opaque mutations may hide writes: the inferred
                    # footprint is no upper bound, so "never written"
                    # cannot be concluded.
                    continue
                anchor = modifies_decorator(method) or method.node
                for attr in sorted(frame - set(footprint.writes)):
                    if attr not in info.init_attrs:
                        continue  # unknown field: GL004's finding, not ours
                    findings.append(
                        self.finding(
                            module,
                            anchor,
                            symbol,
                            f"over-declared frame: {attr!r} is never "
                            f"written on any path of {name} — it only "
                            f"inflates the delta-refresh candidate set",
                        )
                    )
        return findings
