"""GL003 — completions must not mutate shared state directly.

Completion routines run at commit time, inside the synchronizer's
update window, on **one** machine (the issuer).  The paper's contract
for them (§5) is to reconcile machine-local state λ with the commit
outcome and, when further shared-state changes are needed, to *issue
new operations* so they ride the commit stream to every machine.

A completion that pokes the shared replica directly — assigning its
attributes, mutating its containers, or calling an operation method as
a plain Python call — applies the change on exactly one machine,
outside the issue path, so it is never dirty-marked, never committed,
and never propagated: the guesstimate silently diverges from
``[P](sc)`` (the refresh-oracle hazard) and machines disagree forever.
The same applies to callbacks registered via ``on_remote_update``.

``issue_operation`` is also banned inside these callbacks: the update
window is still open and it raises ``IssueBlockedError`` — use
``invoke``/``issue_when_possible``, which defer past the window.
"""

from __future__ import annotations

import ast

from repro.analysis.context import (
    ProjectContext,
    ScopeScanner,
    shared_attr_roots,
)
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register


def _completion_callables(
    scope: ast.AST,
) -> list[tuple[ast.AST, str, int]]:
    """(body-owner node, label, def-line) for every completion-shaped
    callable under ``scope``:

    * ``def completion(...)`` — the repo-wide naming convention;
    * any Lambda or Name passed as ``completion=`` keyword;
    * the callback argument of ``on_remote_update``.
    """
    found: list[tuple[ast.AST, str, int]] = []
    seen: set[int] = set()
    defs: dict[str, ast.FunctionDef] = {}
    for node in ast.walk(scope):
        if isinstance(node, ast.FunctionDef):
            defs[node.name] = node
            if node.name == "completion" and id(node) not in seen:
                seen.add(id(node))
                found.append((node, node.name, node.lineno))
    for node in ast.walk(scope):
        if not isinstance(node, ast.Call):
            continue
        candidates: list[ast.expr] = [
            kw.value for kw in node.keywords if kw.arg == "completion"
        ]
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "on_remote_update"
            and len(node.args) >= 2
        ):
            candidates.append(node.args[1])
        for candidate in candidates:
            if isinstance(candidate, ast.Lambda) and id(candidate) not in seen:
                seen.add(id(candidate))
                found.append((candidate, "<lambda completion>", candidate.lineno))
            elif isinstance(candidate, ast.Name):
                target = defs.get(candidate.id)
                if target is not None and id(target) not in seen:
                    seen.add(id(target))
                    found.append((target, target.name, target.lineno))
    return found


@register
class CompletionSafetyRule(Rule):
    id = "GL003"
    title = "completions reconcile λ and issue operations, never mutate shared state"
    rationale = (
        "paper §5: completion routines run on one machine at commit "
        "time; direct shared-state writes there never commit, never "
        "propagate, and break [P](sc) = sg"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        class_of: dict[int, ast.ClassDef] = {}
        for cls in ast.walk(module.tree):
            if isinstance(cls, ast.ClassDef):
                for sub in ast.walk(cls):
                    class_of.setdefault(id(sub), cls)

        for owner, label, def_line in _completion_callables(module.tree):
            enclosing = class_of.get(id(owner))
            attrs = shared_attr_roots(enclosing) if enclosing is not None else set()
            symbol = (
                f"{enclosing.name}.{label}" if enclosing is not None else label
            )
            body = (
                owner.body
                if isinstance(owner, (ast.FunctionDef, ast.AsyncFunctionDef))
                else [ast.Expr(value=owner.body)]  # Lambda
            )
            scanner = ScopeScanner(self_attrs=attrs)
            scanner.scan(body)
            for mutation in scanner.mutations:
                findings.append(
                    self.finding(
                        module,
                        mutation.node,
                        symbol,
                        f"completion mutates shared state directly "
                        f"({mutation.target_text}); the write happens on "
                        "one machine only and never commits — issue a "
                        "new operation via api.invoke instead",
                        extra_pragma_lines=(def_line,),
                    )
                )
            findings.extend(
                self._banned_calls(module, owner, symbol, def_line, attrs, context)
            )
        return findings

    def _banned_calls(
        self,
        module: SourceModule,
        owner: ast.AST,
        symbol: str,
        def_line: int,
        shared_attrs: set[str],
        context: ProjectContext,
    ) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(owner):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr == "issue_operation":
                findings.append(
                    self.finding(
                        module,
                        node,
                        symbol,
                        "issue_operation inside a completion/remote-update "
                        "callback raises IssueBlockedError (the update "
                        "window is open); use invoke/issue_when_possible",
                        extra_pragma_lines=(def_line,),
                    )
                )
                continue
            # Direct call of an operation method on a shared replica:
            # self.<shared attr>.<operation>(...) executes locally
            # instead of issuing.
            if node.func.attr not in context.operation_names:
                continue
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
                and receiver.attr in shared_attrs
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        symbol,
                        f"completion calls operation "
                        f"{receiver.attr}.{node.func.attr}() as a plain "
                        "method — this executes on the local replica "
                        "without issuing; use "
                        f"api.invoke(self.{receiver.attr}, "
                        f"{node.func.attr!r}, ...)",
                        extra_pragma_lines=(def_line,),
                    )
                )
        return findings
