"""GL002 — every in-place mutation of shared state must be tracked.

Since the versioned object stores (PR 4), commit rounds copy only
objects the runtime knows were touched: the issue path, apply stage and
pending replays report every operation's may-touch set via
``ObjectStore.mark_dirty``.  That bookkeeping is driven entirely by the
repo's conventions for *where mutations are allowed to happen*:

* inside a shared class, only methods carrying a ``@modifies`` frame
  mutate — the runtime marks their objects dirty when they are issued
  and applied as operations, and the contract checker enforces the
  frame dynamically;
* everywhere else (clients, drivers, demos), shared replicas are
  **read-only**: mutations go through ``api.invoke(...)`` so they ride
  the commit stream and the dirty-tracking.

A mutation outside those channels — a frameless method, a write to an
attribute missing from the frame, a mutation inside a read-only
``reading()`` block, or a direct poke at a replica obtained from
``create_instance``/``join_instance`` — is invisible to ``mark_dirty``:
the delta refresh skips the object and the guesstimate silently
diverges from ``[P](sc)``.  That is exactly the hazard the PR 4
``refresh_oracle`` exists to catch at runtime; this rule catches the
whole class before any run.
"""

from __future__ import annotations

import ast

from repro.analysis.context import (
    ProjectContext,
    ScopeScanner,
    SharedClassInfo,
    LIFECYCLE_METHODS,
    reading_blocks,
    replica_name_roots,
)
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register


@register
class DirtyTrackingRule(Rule):
    id = "GL002"
    title = "in-place mutations must be visible to dirty-tracking"
    rationale = (
        "versioned stores (PR 4): delta guess-refresh copies only "
        "mark_dirty-reported objects; an untracked mutation diverges "
        "sg from [P](sc) — the refresh_oracle's runtime hazard, "
        "caught statically"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        for info in context.shared_classes.values():
            if info.module is module:
                findings.extend(self._check_shared_class(module, info))
        findings.extend(self._check_reading_blocks(module))
        findings.extend(self._check_replica_names(module, context))
        return findings

    # -- shared-class methods vs their @modifies frames ----------------------

    def _check_shared_class(
        self, module: SourceModule, info: SharedClassInfo
    ) -> list[Finding]:
        findings: list[Finding] = []
        for method in info.methods.values():
            if method.name in LIFECYCLE_METHODS or (
                method.name.startswith("__") and method.name.endswith("__")
            ):
                continue
            scanner = ScopeScanner(any_self_attr=True)
            scanner.scan(method.node.body)
            symbol = f"{info.name}.{method.name}"
            for mutation in scanner.mutations:
                attr = mutation.root.removeprefix("self.")
                if method.modifies is None:
                    findings.append(
                        self.finding(
                            module,
                            mutation.node,
                            symbol,
                            f"mutates self.{attr} ({mutation.target_text}) "
                            "but declares no @modifies frame: called "
                            "outside the operation path, this write is "
                            "invisible to mark_dirty and the delta "
                            "refresh will not propagate it",
                            extra_pragma_lines=(method.node.lineno,),
                        )
                    )
                elif attr not in method.modifies:
                    findings.append(
                        self.finding(
                            module,
                            mutation.node,
                            symbol,
                            f"mutates self.{attr} ({mutation.target_text}) "
                            f"outside its @modifies frame {method.modifies!r}",
                            extra_pragma_lines=(method.node.lineno,),
                        )
                    )
        return findings

    # -- mutations inside read-only reading() blocks -------------------------

    def _check_reading_blocks(self, module: SourceModule) -> list[Finding]:
        findings: list[Finding] = []
        for with_node, name in reading_blocks(module.tree):
            scanner = ScopeScanner(names={name: name})
            scanner.scan(with_node.body)
            for mutation in scanner.mutations:
                findings.append(
                    self.finding(
                        module,
                        mutation.node,
                        f"<reading {name}>",
                        f"mutates {mutation.target_text} inside a "
                        "read-only api.reading() block; reads must not "
                        "write — issue an operation instead",
                        extra_pragma_lines=(with_node.lineno,),
                    )
                )
        return findings

    # -- direct pokes at replicas bound from the lifecycle API ---------------

    def _check_replica_names(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        scopes: list[tuple[ast.AST, str]] = [(module.tree, "<module>")]
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, node.name))
        for scope, scope_name in scopes:
            roots = replica_name_roots(scope)
            if not roots:
                continue
            body = scope.body if isinstance(scope, ast.Module) else scope.body
            scanner = ScopeScanner(names=roots)
            scanner.scan(body)
            for mutation in scanner.mutations:
                findings.append(
                    self.finding(
                        module,
                        mutation.node,
                        scope_name,
                        f"mutates {mutation.target_text} directly on a "
                        f"shared replica ({mutation.root} came from "
                        "create_instance/join_instance); the write "
                        "bypasses mark_dirty and the commit stream — "
                        "issue an operation via api.invoke instead",
                    )
                )
        return findings
