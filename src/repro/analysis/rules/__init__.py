"""Rule registry: one module per checker, auto-registered on import."""

from __future__ import annotations

from repro.analysis.rules.base import ALL_RULES, Rule, rule_by_id, rules_for

# Importing the rule modules registers them (order fixes rule listing).
from repro.analysis.rules import (  # noqa: E402,F401
    gl001_determinism,
    gl002_dirty,
    gl003_completion,
    gl004_specs,
    gl005_seeds,
    gl006_frames,
    gl007_commutativity,
    gl008_specreads,
)

__all__ = ["ALL_RULES", "Rule", "rule_by_id", "rules_for"]
