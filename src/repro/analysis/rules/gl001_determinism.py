"""GL001 — operations and specs must be deterministic.

The model re-executes every shared operation multiple times (at issue,
while the guesstimate converges, at commit) **on every machine**, and
commits only the final re-execution's effect.  Any dependence on wall
clock, ambient randomness, process identity, the filesystem or the
network makes those executions disagree — between re-executions on one
machine (breaking ``[P](sc) = sg``) and across machines (breaking
``sc(i) = sc(j)``).  Spec predicates run even more often (entry/exit of
every contracted call) and must be deterministic for the same reason.

This is the static front-run of the convergence invariant the
``refresh_oracle`` and the simfuzz agreement probes check dynamically.
"""

from __future__ import annotations

import ast

from repro.analysis.context import (
    ProjectContext,
    SharedClassInfo,
    qualified_call_name,
)
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register

#: module prefixes whose calls are nondeterministic or side-effecting
BANNED_PREFIXES = (
    "time.",
    "random.",
    "os.",
    "sys.",
    "socket.",
    "uuid.",
    "secrets.",
    "subprocess.",
    "threading.",
    "multiprocessing.",
    "asyncio.",
    "datetime.",
    "http.",
    "urllib.",
    "requests.",
    "tempfile.",
    "shutil.",
    "glob.",
)

#: ambient-state builtins banned inside operations and specs
BANNED_BUILTINS = {"open", "input", "print", "id", "exec", "eval", "globals"}


def banned_call(
    node: ast.Call, imports: dict[str, str]
) -> str | None:
    """The offending dotted name if this call is banned, else None."""
    qualified = qualified_call_name(node.func, imports)
    if qualified is None:
        return None
    if qualified in BANNED_BUILTINS and isinstance(node.func, ast.Name):
        return qualified
    for prefix in BANNED_PREFIXES:
        if qualified.startswith(prefix) or qualified == prefix[:-1]:
            return qualified
    return None


def scan_callable(
    body: ast.AST | list[ast.stmt], imports: dict[str, str]
) -> list[tuple[ast.Call, str]]:
    """Banned calls anywhere inside ``body`` (nested defs included —
    a helper closure inside an operation re-executes with it)."""
    roots = body if isinstance(body, list) else [body]
    hits: list[tuple[ast.Call, str]] = []
    for root in roots:
        for node in ast.walk(root):
            if isinstance(node, ast.Call):
                offender = banned_call(node, imports)
                if offender is not None:
                    hits.append((node, offender))
    return hits


@register
class DeterminismRule(Rule):
    id = "GL001"
    title = "operations and specs must be deterministic"
    rationale = (
        "paper §2/§4: operations re-execute at issue, during guess "
        "convergence, and at commit on every machine; front-runs the "
        "refresh_oracle / cross-machine agreement probes"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        imports = context.imports_of(module)
        for info in context.shared_classes.values():
            if info.module is not module:
                continue
            findings.extend(self._check_class(module, info, imports))
        return findings

    def _check_class(
        self,
        module: SourceModule,
        info: SharedClassInfo,
        imports: dict[str, str],
    ) -> list[Finding]:
        findings: list[Finding] = []
        for method in info.methods.values():
            # Body only: calls inside decorators belong to the spec
            # scan below, not to the method.
            for call, offender in scan_callable(method.node.body, imports):
                findings.append(
                    self.finding(
                        module,
                        call,
                        f"{info.name}.{method.name}",
                        f"call to {offender}() inside a shared-object "
                        "method; operations re-execute on every machine "
                        "and must not read ambient machine state",
                        extra_pragma_lines=(method.node.lineno,),
                    )
                )
        for spec in info.specs:
            predicate = spec.predicate
            scan_root: ast.AST | None = None
            if isinstance(predicate, ast.Lambda):
                scan_root = predicate.body
            elif isinstance(predicate, ast.Name):
                scan_root = _module_function(module, predicate.id)
            if scan_root is None:
                continue
            for call, offender in scan_callable(scan_root, imports):
                findings.append(
                    self.finding(
                        module,
                        call,
                        f"{spec.owner}.<{spec.kind}>",
                        f"call to {offender}() inside a {spec.kind} "
                        "predicate; specs are re-evaluated on every "
                        "(re-)execution and must be deterministic",
                        extra_pragma_lines=(spec.lineno,),
                    )
                )
        return findings


def _module_function(module: SourceModule, name: str) -> ast.FunctionDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None
