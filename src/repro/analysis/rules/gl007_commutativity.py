"""GL007 — ``@commutative`` markers must be provable.

The commutativity-aware synchronizer the ROADMAP plans will commit
``@commutative`` operations without the paper's global round order —
so a wrong marker is not a style issue, it is a future divergence bug
minted in advance.  This rule certifies each marker against the
effect engine: the marked operation must be **disjoint from, or
algebraically commuting with, every operation of its class, itself
included** (two clients can issue the same op concurrently).

Certification is the pairwise verdict of :func:`pair_verdict`:

* ``disjoint`` — no write on either side overlaps the other's reads
  or writes;
* ``commutes`` — every overlapping attribute is written on both sides
  with the identical certifiable algebra (``counter-inc``,
  ``set-add``, ``put-const:<v>``).  ``append`` is deliberately not
  certifiable: list order is observable committed state, so two
  appends executed in different orders produce different states.

Anything else — including operations whose footprints the engine
could not fully resolve — leaves the marker uncertified and flagged.
The full op x op matrix (not just the marked rows) is published in
the effects manifest.
"""

from __future__ import annotations

from repro.analysis.context import LIFECYCLE_METHODS, ProjectContext
from repro.analysis.effects import conflicting_attrs, effect_engine, pair_verdict
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register


@register
class CommutativityRule(Rule):
    id = "GL007"
    title = "@commutative marker fails interference certification"
    rationale = (
        "a commutativity-aware commit reorders marked ops; an "
        "uncertifiable marker is a committed-state divergence waiting "
        "for the synchronizer that trusts it"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        engine = effect_engine(context)
        for info in context.shared_classes.values():
            if info.module is not module:
                continue
            marked = {
                name: method
                for name, method in sorted(info.methods.items())
                if method.commutative
            }
            if not marked:
                continue
            footprints = engine.operation_footprints(info)
            for name, method in marked.items():
                anchor = method.commutative_node or method.node
                symbol = f"{info.name}.{name}"
                if method.modifies is None or name in LIFECYCLE_METHODS:
                    findings.append(
                        self.finding(
                            module,
                            anchor,
                            symbol,
                            "@commutative requires a declared @modifies "
                            "frame on a shared operation — there is no "
                            "footprint to certify against",
                        )
                    )
                    continue
                mine = footprints[name]
                conflicts: list[str] = []
                for other, theirs in footprints.items():
                    if pair_verdict(mine, theirs) == "interferes":
                        attrs = ", ".join(conflicting_attrs(mine, theirs))
                        conflicts.append(f"{other} (on {attrs})")
                if not mine.trusted:
                    findings.append(
                        self.finding(
                            module,
                            anchor,
                            symbol,
                            "@commutative cannot be certified: the write "
                            "footprint could not be fully inferred",
                        )
                    )
                elif conflicts:
                    findings.append(
                        self.finding(
                            module,
                            anchor,
                            symbol,
                            f"@commutative is not certified: interferes "
                            f"with {'; '.join(conflicts)}",
                        )
                    )
        return findings
