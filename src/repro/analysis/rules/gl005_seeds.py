"""GL005 — every source of randomness must be explicitly seeded.

Bit-identical fuzzer replay (``simfuzz replay``) depends on no code
path touching the process-global :mod:`random` state or constructing an
unseeded ``random.Random()``.  Draw from ``repro.sim.rand`` (seeded,
per-name streams) instead.

This began life as the seed-plumbing audit in ``tests/sim`` and now
runs as a glint rule over every analyzed module, with the import map
catching ``import random as rnd`` / ``from random import choice``
spellings the original file-local scan missed.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ProjectContext, qualified_call_name
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register

#: module-level draws that mutate/read the shared global random state
GLOBAL_DRAWS = {
    "random",
    "randint",
    "randrange",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "uniform",
    "gauss",
    "expovariate",
    "seed",
    "getrandbits",
}


@register
class SeedPlumbingRule(Rule):
    id = "GL005"
    title = "no global random state, no unseeded random.Random()"
    rationale = (
        "simfuzz replay is bit-identical only if every RNG is an "
        "explicitly seeded stream (repro.sim.rand); ambient draws "
        "desynchronize replays"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        imports = context.imports_of(module)
        enclosing = _enclosing_function_names(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = qualified_call_name(node.func, imports)
            if qualified is None:
                continue
            symbol = enclosing.get(id(node), "<module>")
            if qualified == "random.Random" and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        module,
                        node,
                        symbol,
                        "unseeded random.Random(); use "
                        "repro.sim.rand.seeded_stream so simfuzz replay "
                        "stays bit-identical",
                    )
                )
            elif (
                qualified.startswith("random.")
                and qualified.removeprefix("random.") in GLOBAL_DRAWS
            ):
                findings.append(
                    self.finding(
                        module,
                        node,
                        symbol,
                        f"{qualified}() touches the process-global "
                        "random state; draw from repro.sim.rand instead",
                    )
                )
        return findings


def _enclosing_function_names(tree: ast.Module) -> dict[int, str]:
    """id(node) -> dotted name of the innermost enclosing def/class."""
    names: dict[int, str] = {}

    def visit(node: ast.AST, scope: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                inner = f"{scope}.{child.name}" if scope else child.name
                visit(child, inner)
            else:
                if scope:
                    names[id(child)] = scope
                visit(child, scope)

    visit(tree, "")
    return names


__all__ = ["GLOBAL_DRAWS", "SeedPlumbingRule"]
