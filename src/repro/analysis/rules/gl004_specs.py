"""GL004 — spec callables must match the operation signature and be pure.

The contract decorators evaluate their predicates with fixed calling
conventions (see ``repro.spec.contracts``):

* ``@requires(pred)`` — ``pred(self, *args)``: same positional shape as
  the operation itself;
* ``@ensures(pred)`` — ``pred(old, self, result, *args)``: the
  pre-state snapshot, the object, the return value, then the
  operation's arguments;
* ``@invariant(pred)`` — ``pred(self)``.

A predicate whose arity does not fit raises ``TypeError`` at the first
contracted call — but only on the paths that exercise it, which for an
``ensures`` clause may be a rare failure branch deep in a fuzz run.
This rule checks the shape statically.

Predicates are also evaluated at entry *and* exit of every call and on
every re-execution, so they must be pure: a predicate that mutates the
object or an argument changes committed state as a side effect of
*checking* it, off the operation path — the same untracked-write hazard
GL002 polices, now hidden inside a contract.
"""

from __future__ import annotations

import ast

from repro.analysis.context import (
    ProjectContext,
    ScopeScanner,
    SharedClassInfo,
    SpecBinding,
    function_params,
)
from repro.analysis.loader import SourceModule
from repro.analysis.report import Finding
from repro.analysis.rules.base import Rule, register

#: leading parameter names each predicate kind must declare
LEADING_PARAMS = {
    "requires": ("self",),
    "ensures": ("old", "self", "result"),
    "invariant": ("self",),
}


def _expected_arity(spec: SpecBinding) -> int | None:
    """How many positional arguments the runtime passes the predicate."""
    if spec.kind == "invariant":
        return 1
    op_params = function_params(spec.method) if spec.method is not None else None
    if op_params is None:
        return None  # variadic operation — skip the arity check
    n_op_args = len(op_params) - 1  # drop the operation's own ``self``
    if spec.kind == "requires":
        return 1 + n_op_args
    return 3 + n_op_args  # ensures


def _predicate_signature(
    predicate: ast.expr, module: SourceModule
) -> tuple[ast.Lambda | ast.FunctionDef, list[str], int] | None:
    """(callable node, positional params, defaults count), resolved
    through module-level ``def`` names; None when unresolvable/variadic."""
    node: ast.Lambda | ast.FunctionDef | None = None
    if isinstance(predicate, ast.Lambda):
        node = predicate
    elif isinstance(predicate, ast.Name):
        for item in module.tree.body:
            if isinstance(item, ast.FunctionDef) and item.name == predicate.id:
                node = item
                break
    if node is None:
        return None
    params = function_params(node)
    if params is None:
        return None
    return node, params, len(node.args.defaults)


@register
class SpecConformanceRule(Rule):
    id = "GL004"
    title = "spec predicates fit the contract calling convention and are pure"
    rationale = (
        "contracts evaluate requires(self, *args), ensures(old, self, "
        "result, *args), invariant(self) on every (re-)execution; a "
        "mis-shaped predicate is a latent TypeError, an impure one is "
        "an untracked write"
    )

    def check(
        self, module: SourceModule, context: ProjectContext
    ) -> list[Finding]:
        findings: list[Finding] = []
        for info in context.shared_classes.values():
            if info.module is not module:
                continue
            for spec in info.specs:
                findings.extend(self._check_spec(module, spec))
            findings.extend(self._check_modifies_fields(module, info))
        return findings

    def _check_spec(
        self, module: SourceModule, spec: SpecBinding
    ) -> list[Finding]:
        findings: list[Finding] = []
        resolved = _predicate_signature(spec.predicate, module)
        if resolved is None:
            return findings
        node, params, n_defaults = resolved
        symbol = f"{spec.owner}.<{spec.kind}>"

        # Predicates are called positionally, so parameter names are
        # free — but when the conventional names are all present in the
        # wrong order (``lambda self, old, result``), the author almost
        # certainly misremembered the calling convention.
        leading = LEADING_PARAMS[spec.kind]
        if (
            len(leading) > 1
            and set(leading) <= set(params)
            and tuple(params[: len(leading)]) != leading
        ):
            findings.append(
                self.finding(
                    module,
                    spec.predicate,
                    symbol,
                    f"{spec.kind} predicate declares the conventional "
                    f"parameters out of order: the runtime passes "
                    f"{leading} positionally but the predicate starts "
                    f"with {tuple(params[:len(leading)])}",
                    extra_pragma_lines=(spec.lineno,),
                )
            )

        expected = _expected_arity(spec)
        if expected is not None and not (
            len(params) - n_defaults <= expected <= len(params)
        ):
            findings.append(
                self.finding(
                    module,
                    spec.predicate,
                    symbol,
                    f"{spec.kind} predicate takes {len(params)} "
                    f"parameter(s) but the contract runtime passes "
                    f"{expected} — this raises TypeError on the first "
                    "contracted call that evaluates it",
                    extra_pragma_lines=(spec.lineno,),
                )
            )

        # Purity: a predicate must not mutate anything reachable from
        # its parameters.
        body = (
            [ast.Expr(value=node.body)]
            if isinstance(node, ast.Lambda)
            else node.body
        )
        scanner = ScopeScanner(
            names={p: p for p in params}, any_self_attr="self" in params
        )
        scanner.scan(body)
        for mutation in scanner.mutations:
            findings.append(
                self.finding(
                    module,
                    mutation.node,
                    symbol,
                    f"{spec.kind} predicate mutates "
                    f"{mutation.target_text}; specs are evaluated at "
                    "entry/exit of every (re-)execution and must be "
                    "pure — this write is untracked shared state",
                    extra_pragma_lines=(spec.lineno, node.lineno),
                )
            )
        return findings

    def _check_modifies_fields(
        self, module: SourceModule, info: SharedClassInfo
    ) -> list[Finding]:
        """Every @modifies field must name a real attribute of the class
        (one assigned in ``__init__``) — a typo here silently widens or
        narrows the write frame the contract checker enforces."""
        findings: list[Finding] = []
        if not info.init_attrs:
            return findings
        for method in info.methods.values():
            if not method.modifies:
                continue
            anchor: ast.AST = method.node
            for dec in method.node.decorator_list:
                target = dec.func if isinstance(dec, ast.Call) else dec
                name = getattr(target, "id", getattr(target, "attr", None))
                if name == "modifies":
                    anchor = dec
                    break
            for field_name in method.modifies:
                if field_name not in info.init_attrs:
                    findings.append(
                        self.finding(
                            module,
                            anchor,
                            f"{info.name}.{method.name}",
                            f"@modifies names unknown field "
                            f"{field_name!r}; attributes assigned in "
                            f"__init__ are {sorted(info.init_attrs)}",
                        )
                    )
        return findings
