"""glint — AST-based static analysis for GUESSTIMATE operation code.

The runtime enforces the paper's restrictions dynamically (contract
checking, the refresh oracle, simfuzz agreement probes); this package
front-runs the same hazards statically, before any run:

=======  ==========================================================
GL001    operations and specs must be deterministic
GL002    in-place mutations must be visible to dirty-tracking
GL003    completions issue operations, never mutate shared state
GL004    spec predicates fit the calling convention and are pure
GL005    no global random state, no unseeded ``random.Random()``
GL006    declared @modifies frames equal inferred write footprints
GL007    @commutative markers certify against the interference matrix
GL008    spec predicates read only state inside the frame
=======  ==========================================================

GL006–GL008 ride on the interprocedural effect engine
(:mod:`repro.analysis.effects`), which also publishes the
machine-readable effects manifest (:mod:`repro.analysis.manifest`)
the commutativity-aware synchronizer will consume.

Entry points: the ``glint`` console script, ``python -m repro.cli
lint``, or :func:`analyze_paths` from code.  See ``docs/ANALYSIS.md``.
"""

from repro.analysis.effects import EffectEngine, Footprint, effect_engine, pair_verdict
from repro.analysis.engine import analyze_modules, analyze_paths
from repro.analysis.loader import AnalysisUsageError, load_module, load_paths
from repro.analysis.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    diff_manifests,
    load_manifest,
    manifest_from_json,
    manifest_to_json,
    write_manifest,
)
from repro.analysis.report import (
    REPORT_SCHEMA_VERSION,
    Baseline,
    Finding,
    Report,
)
from repro.analysis.rules.base import ALL_RULES, Rule, rule_by_id, rules_for

__all__ = [
    "ALL_RULES",
    "AnalysisUsageError",
    "Baseline",
    "EffectEngine",
    "Finding",
    "Footprint",
    "MANIFEST_SCHEMA_VERSION",
    "REPORT_SCHEMA_VERSION",
    "Report",
    "Rule",
    "analyze_modules",
    "analyze_paths",
    "build_manifest",
    "diff_manifests",
    "effect_engine",
    "load_manifest",
    "load_module",
    "load_paths",
    "manifest_from_json",
    "manifest_to_json",
    "pair_verdict",
    "rule_by_id",
    "rules_for",
    "write_manifest",
]
