"""glint — AST-based static analysis for GUESSTIMATE operation code.

The runtime enforces the paper's restrictions dynamically (contract
checking, the refresh oracle, simfuzz agreement probes); this package
front-runs the same hazards statically, before any run:

=======  ==========================================================
GL001    operations and specs must be deterministic
GL002    in-place mutations must be visible to dirty-tracking
GL003    completions issue operations, never mutate shared state
GL004    spec predicates fit the calling convention and are pure
GL005    no global random state, no unseeded ``random.Random()``
=======  ==========================================================

Entry points: the ``glint`` console script, ``python -m repro.cli
lint``, or :func:`analyze_paths` from code.  See ``docs/ANALYSIS.md``.
"""

from repro.analysis.engine import analyze_modules, analyze_paths
from repro.analysis.loader import AnalysisUsageError, load_module, load_paths
from repro.analysis.report import (
    REPORT_SCHEMA_VERSION,
    Baseline,
    Finding,
    Report,
)
from repro.analysis.rules.base import ALL_RULES, Rule, rule_by_id, rules_for

__all__ = [
    "ALL_RULES",
    "AnalysisUsageError",
    "Baseline",
    "Finding",
    "REPORT_SCHEMA_VERSION",
    "Report",
    "Rule",
    "analyze_modules",
    "analyze_paths",
    "load_module",
    "load_paths",
    "rule_by_id",
    "rules_for",
]
