"""Source discovery and parsing for the static-analysis engine.

Every rule consumes :class:`SourceModule` objects — a parsed AST plus
the raw source lines (for pragma suppression and message context).
Loading is purely syntactic: analyzed code is **never imported**, so
fixture files with deliberate violations, demo scripts with top-level
side effects, and code with unavailable dependencies are all safe to
scan.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path


class AnalysisUsageError(Exception):
    """A problem with the *invocation*, not the analyzed code: missing
    paths, unparsable source, unknown rule ids, corrupt baselines.
    The CLI maps this to exit code 2."""


@dataclass
class SourceModule:
    """One parsed source file."""

    path: Path  # absolute
    display_path: str  # repo-relative (or as-given) posix path
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    def line(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def _display_path(path: Path, root: Path | None) -> str:
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return path.as_posix()


def load_module(path: Path, root: Path | None = None) -> SourceModule:
    """Parse one file; raises :class:`AnalysisUsageError` on bad input."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise AnalysisUsageError(f"cannot read {path}: {exc}") from exc
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        raise AnalysisUsageError(
            f"cannot parse {path}:{exc.lineno}: {exc.msg}"
        ) from exc
    return SourceModule(
        path=path,
        display_path=_display_path(path, root),
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )


def load_paths(
    paths: list[str | Path], root: str | Path | None = None
) -> list[SourceModule]:
    """Load every ``.py`` file under the given files/directories.

    ``root`` (default: the current working directory) anchors the
    display paths used in findings and baselines, so baselines stay
    stable across checkouts.
    """
    anchor = Path(root).resolve() if root is not None else Path.cwd()
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise AnalysisUsageError(f"no such file or directory: {raw}")
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise AnalysisUsageError(f"not a Python source file: {raw}")
    seen: set[Path] = set()
    modules: list[SourceModule] = []
    for path in files:
        resolved = path.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        modules.append(load_module(resolved, anchor))
    return modules
