"""Interprocedural effect inference for shared-class operations.

Where :mod:`repro.analysis.context` answers "did this statement mutate
a tracked root?", this module answers the whole-operation question the
commutativity roadmap item needs: *what is the true read/write
footprint of one shared operation*, at (attribute, access-kind)
granularity, with self-method calls resolved through the project index
and helper-parameter aliases mapped back to the caller's arguments.

The result per method is a :class:`Footprint`:

* ``writes``: attribute -> set of access kinds.  Kinds distinguish a
  whole-attribute ``rebind`` from a container-interior ``setitem`` /
  ``delitem`` / ``aug`` / ``mutate:<method>`` — the difference between
  "replaces the delta-refresh unit" and "touches one cell of it".
* ``reads``: every attribute the operation observes, and the subset of
  ``stray_reads`` that are *not* structurally part of a write (a guard,
  a computed result, an arbitrary right-hand side).  Stray reads are
  what break commutativity certification: an op whose effect depends
  on prior state does not commute even if its write looks algebraic.
* ``algebra``: attribute -> certified algebra class, for attributes
  whose every write is the same commuting operation — ``counter-inc``
  (``+=``/``-=`` of a state-independent amount, including the
  ``d[k] = d.get(k, 0) + c`` idiom), ``set-add`` (``s.add(x)``), or
  ``put-const:<v>`` (``d[k] = <literal>``).  ``append`` is recognized
  but never certifiable: list order is observable committed state, so
  two appends do not commute under state equality.
* ``complete``: False when inference had to give up (a call to a
  method outside the analyzed class, variadic helper signatures,
  ``*args`` at a call site).  Incomplete footprints are never used to
  accuse (GL006 skips them) and never used to certify (GL007 treats
  them as interfering) — soundness over coverage in both directions.
* ``opaque``: True when some mutation went through a local the alias
  tracker could not resolve *and* could not prove fresh (built from a
  literal/copy inside the method).  Such a footprint may under-count
  writes, so it is not ``trusted`` as an upper bound: GL006 suppresses
  the over-declared arm, GL007 refuses to certify, and the runtime
  footprint probe skips the method.

``pair_verdict`` reduces two footprints to the three-valued outcome
GL007 and the effects manifest publish: ``disjoint`` (no write on
either side overlaps the other's reads or writes), ``commutes`` (every
overlapping attribute is written on both sides with the identical
certifiable algebra), or ``interferes``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.context import (
    LIFECYCLE_METHODS,
    MUTATING_METHODS,
    PASSTHROUGH_METHODS,
    ProjectContext,
    ScopeScanner,
    SharedClassInfo,
    _expr_text,
    function_params,
)

#: algebra classes whose writes provably commute under state equality
CERTIFIABLE_PREFIXES = ("counter-inc", "set-add", "put-const:")

#: builtins whose result is a *view-preserving* rearrangement of their
#: first argument: the returned container is fresh, but its elements
#: are the argument's interior objects, so mutating an element mutates
#: the original.  ``sorted(self.vehicles.items())`` and friends.
INTERIOR_BUILTINS = {
    "sorted", "list", "tuple", "reversed", "enumerate", "dict", "set",
    "frozenset",
}

#: root-label prefix for effects charged to a helper parameter
_PARAM = "param:"
_SELF = "self."


def is_certifiable(algebra: str | None) -> bool:
    """True for algebra classes GL007 may certify as commuting."""
    return algebra is not None and algebra.startswith(CERTIFIABLE_PREFIXES)


# ---------------------------------------------------------------------------
# per-method scanning (one function body, aliases resolved linearly)


class _EffectScanner(ScopeScanner):
    """ScopeScanner extended with reads, access kinds, and algebra.

    Roots are labelled ``self.<attr>`` for receiver attributes and
    ``param:<name>`` for the method's own parameters, so a helper's
    effects on its parameters can later be mapped through the caller's
    argument aliases.
    """

    def __init__(self, params: list[str]):
        super().__init__(names={p: _PARAM + p for p in params}, any_self_attr=True)
        #: root -> access kinds
        self.writes: dict[str, set[str]] = {}
        #: root -> algebra class (or None) per write access
        self.algebra: dict[str, set[str | None]] = {}
        #: root -> first write anchor node
        self.anchors: dict[str, ast.AST] = {}
        #: (root, node) for every observed read
        self.reads: list[tuple[str, ast.AST]] = []
        #: ``self.<method>(...)`` call sites with pre-resolved arg roots
        self.self_calls: list[tuple[ast.Call, list[str | None], dict[str, str | None]]] = []
        #: ids of read nodes that are structurally part of a write
        self._absorbed: set[int] = set()
        #: locals assigned a definitely-fresh value (literal, copy, ...)
        self.fresh: set[str] = set()
        #: mutation sites through unresolvable, not-provably-fresh
        #: receivers — the footprint may under-count writes
        self.opaque: list[ast.AST] = []

    # -- root resolution (engine-specific extensions) -------------------------

    def _resolve(self, node: ast.expr) -> str | None:
        """Base resolution plus two interior-view rules the effect
        engine needs: view-preserving builtins (``sorted``/``list``/…
        over a tracked container still expose its interior) and
        comprehensions whose element carries a loop variable drawn from
        a tracked iterable (``[(k, v) for k, v in self.d.items()]``)."""
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in PASSTHROUGH_METHODS
                ):
                    node = func.value
                elif (
                    isinstance(func, ast.Name)
                    and func.id in INTERIOR_BUILTINS
                    and node.args
                    and not isinstance(node.args[0], ast.Starred)
                ):
                    node = node.args[0]
                else:
                    return None
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
                interior = self._comp_interior(node)
                if interior is None:
                    return None
                node = interior
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    attr = node.attr
                    if self.any_self_attr or attr in self.self_attrs:
                        return f"self.{attr}"
                    return None
                node = node.value
            elif isinstance(node, ast.Name):
                if node.id in self.names:
                    return self.names[node.id]
                return self.aliases.get(node.id)
            else:
                return None

    def _comp_interior(self, comp: ast.expr) -> ast.expr | None:
        """The iterable a comprehension's elements are views *into*.

        ``[(vid, v) for vid, v in sorted(self.d.items())]`` yields
        tuples holding interior objects of ``self.d`` — mutating an
        element mutates the attribute.  Conservatively: if the element
        expression carries any loop variable as a bare name, the value
        is an interior view of the first generator's iterable."""
        targets: set[str] = set()
        for generator in comp.generators:  # type: ignore[attr-defined]
            for node in ast.walk(generator.target):
                if isinstance(node, ast.Name):
                    targets.add(node.id)
        elt = comp.elt  # type: ignore[attr-defined]
        carries = any(
            isinstance(node, ast.Name) and node.id in targets
            for node in ast.walk(elt)
        )
        if not carries:
            return None
        return comp.generators[0].iter  # type: ignore[attr-defined]

    def _is_fresh(self, value: ast.expr) -> bool:
        """Is ``value`` definitely a brand-new object (or a view into
        one) — i.e. provably *not* an alias of tracked state?"""
        node = value
        while True:
            if isinstance(
                node,
                (ast.List, ast.Dict, ast.Set, ast.Tuple, ast.Constant,
                 ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
                 ast.JoinedStr),
            ):
                # A comprehension is fresh only when it does not expose
                # interior views of tracked state (checked by _resolve
                # before freshness is consulted).
                return True
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    return False
                node = node.value
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Attribute):
                    node = func.value  # method result: fresh iff receiver is
                elif (
                    isinstance(func, ast.Name)
                    and func.id in INTERIOR_BUILTINS
                    and node.args
                    and not isinstance(node.args[0], ast.Starred)
                ):
                    node = node.args[0]
                else:
                    return False
            elif isinstance(node, ast.Name):
                return node.id in self.fresh
            else:
                return False

    def _note_opacity(self, target: ast.expr) -> None:
        if self._resolve(target) is None and not self._is_fresh(target):
            self.opaque.append(target)

    # -- write classification ------------------------------------------------

    def _record(self, node: ast.AST, root: str, kind: str, target: ast.AST) -> None:
        super()._record(node, root, kind, target)
        access_kind, algebra, absorb = self._classify(node, root, kind, target)
        self.writes.setdefault(root, set()).add(access_kind)
        self.algebra.setdefault(root, set()).add(algebra)
        self.anchors.setdefault(root, node)
        # Reads that only exist to express this write are not "stray":
        # the receiver of a mutating call, and the same-cell read of a
        # certified read-modify-write.  Everything else on the
        # right-hand side stays a stray read — state feeding the write
        # is exactly what pairwise interference must see.
        if kind.startswith("call:") and isinstance(node, ast.Call):
            self._absorb(node.func)
        if absorb is not None:
            self._absorb(absorb)

    def _absorb(self, node: ast.AST) -> None:
        self._absorbed.update(id(sub) for sub in ast.walk(node))

    def _classify(
        self, node: ast.AST, root: str, kind: str, target: ast.AST
    ) -> tuple[str, str | None, ast.AST | None]:
        if kind == "assign":
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return "rebind", None, None
            if isinstance(target, ast.Subscript) and isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Constant):
                    return "setitem", f"put-const:{_expr_text(node.value)}", None
                same_cell = self._counter_inc_read(target, node.value, root)
                if same_cell is not None:
                    return "setitem", "counter-inc", same_cell
            return "setitem", None, None
        if kind == "augassign":
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                return "aug", "counter-inc", None
            return "aug", None, None
        if kind == "delete":
            return "delitem", None, None
        method = kind.split(":", 1)[1]
        algebra = None
        if method == "add":
            algebra = "set-add"
        elif method == "append":
            algebra = "append"  # recognized, never certifiable
        return f"mutate:{method}", algebra, None

    def _reads_tracked(self, expr: ast.AST) -> bool:
        """Does ``expr`` observe any tracked root (self state, params,
        aliases)?  State-dependent operands disqualify an algebra."""
        for node in ast.walk(expr):
            if isinstance(node, ast.Attribute) and (
                isinstance(node.value, ast.Name) and node.value.id == "self"
            ):
                return True
            if isinstance(node, ast.Name) and (
                node.id == "self"
                or node.id in self.names
                or node.id in self.aliases
            ):
                return True
        return False

    def _counter_inc_read(
        self, target: ast.Subscript, value: ast.expr, root: str
    ) -> ast.AST | None:
        """The same-cell read of a ``d[k] = d[k] + c`` /
        ``d[k] = d.get(k, 0) + c`` read-modify-write, or None.  The
        amount ``c`` may be any expression: if it reads state, that
        read stays stray and decertifies or interferes as usual."""
        if not isinstance(value, ast.BinOp) or not isinstance(
            value.op, (ast.Add, ast.Sub)
        ):
            return None
        key_text = _expr_text(target.slice)
        if isinstance(value.op, ast.Add):
            candidates = (value.left, value.right)
        else:
            candidates = (value.left,)
        for read in candidates:
            if self._same_cell(read, root, key_text):
                return read
        return None

    def _same_cell(self, read: ast.expr, root: str, key_text: str) -> bool:
        if isinstance(read, ast.Subscript):
            return (
                self._resolve(read) == root
                and _expr_text(read.slice) == key_text
            )
        if (
            isinstance(read, ast.Call)
            and isinstance(read.func, ast.Attribute)
            and read.func.attr == "get"
            and read.args
        ):
            if self._resolve(read.func.value) != root:
                return False
            if _expr_text(read.args[0]) != key_text:
                return False
            default = read.args[1] if len(read.args) > 1 else None
            return default is None or not self._reads_tracked(default)
        return False

    # -- reads and self-call collection --------------------------------------

    def _bind_alias(self, name: str, value: ast.expr) -> None:
        # Rebinding a parameter makes it an ordinary local: drop the
        # param root so later mutations charge the new alias (if any),
        # not the caller's argument.
        self.names.pop(name, None)
        super()._bind_alias(name, value)
        if name not in self.aliases and self._is_fresh(value):
            self.fresh.add(name)
        else:
            self.fresh.discard(name)

    def _bind_target(self, target: ast.expr, value: ast.expr | None) -> None:
        super()._bind_target(target, value)
        if isinstance(target, (ast.Tuple, ast.List)) and value is not None:
            fresh_value = (
                self._resolve(value) is None and self._is_fresh(value)
            )
            for element in target.elts:
                if isinstance(element, ast.Name):
                    if fresh_value:
                        self.fresh.add(element.id)
                    else:
                        self.fresh.discard(element.id)

    def _mutation_target(self, target: ast.expr, node: ast.AST, kind: str) -> None:
        super()._mutation_target(target, node, kind)
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            self._note_opacity(target)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.AugAssign) and isinstance(
            stmt.target, (ast.Subscript, ast.Attribute)
        ):
            self._note_opacity(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    self._note_opacity(target)
        super()._stmt(stmt)

    def _expr(self, expr: ast.expr) -> None:
        super()._expr(expr)
        # ``self.method(...)`` is a call, not a state read: the callee's
        # effects are folded in through self_calls instead.
        method_access = {
            id(node.func)
            for node in ast.walk(expr)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        }
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Load)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and id(node) not in method_access
            ):
                self.reads.append((_SELF + node.attr, node))
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                root = self.names.get(node.id) or self.aliases.get(node.id)
                if root is not None:
                    self.reads.append((root, node))
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr not in MUTATING_METHODS
                and node.func.attr not in PASSTHROUGH_METHODS
            ):
                arg_roots = [self._resolve(arg) for arg in node.args]
                kw_roots = {
                    kw.arg: self._resolve(kw.value)
                    for kw in node.keywords
                    if kw.arg is not None
                }
                self.self_calls.append((node, arg_roots, kw_roots))
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
            ):
                # A mutating call whose receiver cannot be resolved and
                # is not provably fresh may be hiding a state write.
                self._note_opacity(node.func.value)

    def read_roots(self) -> tuple[set[str], set[str]]:
        """(all read roots, stray read roots)."""
        all_roots = {root for root, _node in self.reads}
        stray = {
            root
            for root, node in self.reads
            if id(node) not in self._absorbed
        }
        return all_roots, stray


# ---------------------------------------------------------------------------
# resolved (interprocedural) effects


@dataclass
class _Resolved:
    """Effects of one method with self-calls folded in, still keyed by
    root label so helper-parameter effects can map further out."""

    reads: set[str] = field(default_factory=set)
    stray_reads: set[str] = field(default_factory=set)
    writes: dict[str, set[str]] = field(default_factory=dict)
    algebra: dict[str, set[str | None]] = field(default_factory=dict)
    anchors: dict[str, ast.AST] = field(default_factory=dict)
    complete: bool = True
    opaque: bool = False

    def merge_root(
        self,
        root: str,
        kinds: set[str],
        algebra: set[str | None],
        anchor: ast.AST,
    ) -> None:
        self.writes.setdefault(root, set()).update(kinds)
        self.algebra.setdefault(root, set()).update(algebra)
        self.anchors.setdefault(root, anchor)


@dataclass
class Footprint:
    """The public, attribute-level effect summary of one method."""

    reads: set[str] = field(default_factory=set)
    stray_reads: set[str] = field(default_factory=set)
    writes: dict[str, set[str]] = field(default_factory=dict)
    #: attribute -> certified algebra class, for written attributes only
    algebra: dict[str, str | None] = field(default_factory=dict)
    #: attribute -> AST node to anchor findings on (write site/call site)
    anchors: dict[str, ast.AST] = field(default_factory=dict)
    complete: bool = True
    #: True when some mutation went through an unresolvable local that
    #: is not provably fresh — writes may be under-counted, so the
    #: footprint is not trusted as an upper bound
    opaque: bool = False

    @property
    def trusted(self) -> bool:
        """Usable as an *upper bound* on writes (accuse/certify)."""
        return self.complete and not self.opaque


class EffectEngine:
    """Resolves footprints over one :class:`ProjectContext`.

    Memoized per (class, method); cycles through mutually recursive
    helpers resolve to their least fixpoint (effect union is monotone
    and idempotent, so treating an in-progress method as empty and
    refusing to cache any result whose computation hit a cycle gives
    the exact solution on re-query).
    """

    def __init__(self, context: ProjectContext):
        self.context = context
        self._cache: dict[tuple[str, str], _Resolved] = {}
        self._stack: list[tuple[str, str]] = []
        #: lowest stack index a cycle reached back into (inf = none)
        self._lowlink: float = float("inf")

    # -- public API ----------------------------------------------------------

    def footprint(self, cls_name: str, method_name: str) -> Footprint:
        resolved = self._resolve(cls_name, method_name)
        fp = Footprint(complete=resolved.complete, opaque=resolved.opaque)
        for root in resolved.reads:
            if root.startswith(_SELF):
                fp.reads.add(root[len(_SELF):])
        for root in resolved.stray_reads:
            if root.startswith(_SELF):
                fp.stray_reads.add(root[len(_SELF):])
        for root, kinds in resolved.writes.items():
            if not root.startswith(_SELF):
                continue
            attr = root[len(_SELF):]
            fp.writes[attr] = set(kinds)
            fp.anchors[attr] = resolved.anchors[root]
            classes = resolved.algebra.get(root, {None})
            if len(classes) == 1:
                (algebra,) = classes
            else:
                algebra = None
            # A stray read of the same attribute means the op's effect
            # depends on prior state beyond the algebraic cell: decertify.
            if attr in fp.stray_reads:
                algebra = None
            fp.algebra[attr] = algebra
        return fp

    def operation_footprints(self, info: SharedClassInfo) -> dict[str, Footprint]:
        """Footprints of every framed, non-lifecycle method."""
        return {
            name: self.footprint(info.name, name)
            for name, method in sorted(info.methods.items())
            if method.modifies is not None and name not in LIFECYCLE_METHODS
        }

    def interference_matrix(
        self, footprints: dict[str, Footprint]
    ) -> dict[str, str]:
        """Unordered pairwise verdicts, keyed ``"a|b"`` with a <= b.

        Self-pairs are included: an op must commute with *itself* to be
        certifiable (two clients issuing it concurrently)."""
        matrix: dict[str, str] = {}
        names = sorted(footprints)
        for i, a in enumerate(names):
            for b in names[i:]:
                matrix[f"{a}|{b}"] = pair_verdict(footprints[a], footprints[b])
        return matrix

    # -- resolution ----------------------------------------------------------

    def _resolve(self, cls_name: str, method_name: str) -> _Resolved:
        key = (cls_name, method_name)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if key in self._stack:
            # Least-fixpoint seed for the cycle; remember how far back
            # it reached so interior members are not cached partially.
            self._lowlink = min(self._lowlink, self._stack.index(key))
            return _Resolved()
        depth = len(self._stack)
        self._stack.append(key)
        try:
            resolved = self._resolve_uncached(cls_name, method_name)
        finally:
            self._stack.pop()
        # The cycle head (and anything cycle-free) computed the full
        # union and may be cached; interior members saw a partial seed
        # and must recompute on their own top-level query.
        if self._lowlink >= depth:
            self._cache[key] = resolved
            self._lowlink = float("inf")
        return resolved

    def _resolve_uncached(self, cls_name: str, method_name: str) -> _Resolved:
        info = self.context.shared_classes.get(cls_name)
        resolved = _Resolved()
        method = info.methods.get(method_name) if info is not None else None
        if method is None:
            resolved.complete = False
            return resolved
        params = function_params(method.node)
        scanner = _EffectScanner(params[1:] if params else [])
        scanner.scan(method.node.body)
        resolved.opaque = bool(scanner.opaque)

        reads, stray = scanner.read_roots()
        resolved.reads |= reads
        resolved.stray_reads |= stray
        for root, kinds in scanner.writes.items():
            resolved.merge_root(
                root, kinds, scanner.algebra[root], scanner.anchors[root]
            )

        for call, arg_roots, kw_roots in scanner.self_calls:
            self._fold_call(resolved, info, call, arg_roots, kw_roots)
        return resolved

    def _fold_call(
        self,
        resolved: _Resolved,
        info: SharedClassInfo,
        call: ast.Call,
        arg_roots: list[str | None],
        kw_roots: dict[str, str | None],
    ) -> None:
        name = call.func.attr  # type: ignore[attr-defined]
        callee = info.methods.get(name)
        if (
            callee is None
            or name in LIFECYCLE_METHODS
            or any(isinstance(arg, ast.Starred) for arg in call.args)
        ):
            resolved.complete = False
            return
        callee_params = function_params(callee.node)
        if callee_params is None or not callee_params:
            resolved.complete = False  # variadic helper: unmappable args
            return
        child = self._resolve(info.name, name)
        resolved.complete = resolved.complete and child.complete
        resolved.opaque = resolved.opaque or child.opaque

        # Positional + keyword argument roots, by callee parameter name.
        mapping: dict[str, str | None] = dict(
            zip(callee_params[1:], arg_roots)
        )
        mapping.update(kw_roots)

        def remap(root: str) -> str | None:
            if root.startswith(_PARAM):
                return mapping.get(root[len(_PARAM):])
            return root  # self.<attr> roots pass through unchanged

        for root in child.reads:
            mapped = remap(root)
            if mapped is not None:
                resolved.reads.add(mapped)
        for root in child.stray_reads:
            mapped = remap(root)
            if mapped is not None:
                resolved.stray_reads.add(mapped)
        for root, kinds in child.writes.items():
            mapped = remap(root)
            if mapped is None:
                continue  # helper mutates a fresh local: not shared state
            resolved.merge_root(
                mapped, kinds, child.algebra.get(root, {None}), call
            )


# ---------------------------------------------------------------------------
# pairwise verdicts


def pair_verdict(fa: Footprint, fb: Footprint) -> str:
    """``disjoint`` | ``commutes`` | ``interferes`` for two footprints."""
    if not (fa.trusted and fb.trusted):
        return "interferes"  # unknown effects can never certify
    wa, wb = set(fa.writes), set(fb.writes)
    overlap = (wa & (wb | fb.reads)) | (wb & fa.reads)
    if not overlap:
        return "disjoint"
    for attr in overlap:
        if attr in wa and attr in wb:
            algebra = fa.algebra.get(attr)
            if (
                algebra is not None
                and algebra == fb.algebra.get(attr)
                and is_certifiable(algebra)
            ):
                continue
        return "interferes"
    return "commutes"


def conflicting_attrs(fa: Footprint, fb: Footprint) -> list[str]:
    """The attributes that make ``pair_verdict`` say ``interferes``."""
    if not (fa.trusted and fb.trusted):
        return sorted(set(fa.writes) | set(fb.writes))
    wa, wb = set(fa.writes), set(fb.writes)
    overlap = (wa & (wb | fb.reads)) | (wb & fa.reads)
    conflicts = []
    for attr in sorted(overlap):
        if attr in wa and attr in wb:
            algebra = fa.algebra.get(attr)
            if (
                algebra is not None
                and algebra == fb.algebra.get(attr)
                and is_certifiable(algebra)
            ):
                continue
        conflicts.append(attr)
    return conflicts


def effect_engine(context: ProjectContext) -> EffectEngine:
    """The per-context engine, cached on the context so the three
    effect rules and the manifest builder share one resolution pass."""
    engine = getattr(context, "_effect_engine", None)
    if engine is None:
        engine = EffectEngine(context)
        context._effect_engine = engine  # type: ignore[attr-defined]
    return engine
