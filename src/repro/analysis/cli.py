"""``glint`` — the command-line front end of :mod:`repro.analysis`.

Exit codes follow the usual linter convention:

* ``0`` — clean (no findings after pragma/baseline suppression);
* ``1`` — findings reported;
* ``2`` — usage error: bad paths, unparsable source, unknown rule ids,
  corrupt baseline.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.engine import analyze_paths
from repro.analysis.loader import AnalysisUsageError
from repro.analysis.report import Baseline
from repro.analysis.rules.base import ALL_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="glint",
        description=(
            "AST-based static analysis for GUESSTIMATE operation code "
            "(determinism, dirty-tracking, completion safety, spec "
            "conformance, seed plumbing)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (directories recurse over *.py)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        help="write the report to this file as well as stdout",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file of accepted findings to suppress",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write current findings to PATH as the new baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        help="anchor for repo-relative display paths (default: cwd)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"       {rule.rationale}")
        return EXIT_CLEAN

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("glint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        report = analyze_paths(
            args.paths, rule_ids=rule_ids, baseline=baseline, root=args.root
        )
        if args.write_baseline:
            Baseline().write(args.write_baseline, report)
            print(
                f"wrote {len(report.findings)} finding(s) to "
                f"{args.write_baseline}"
            )
            return EXIT_CLEAN
    except AnalysisUsageError as exc:
        print(f"glint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    rendered = report.to_json() if args.format == "json" else report.format_text()
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return EXIT_FINDINGS if report.findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
