"""``glint`` — the command-line front end of :mod:`repro.analysis`.

Exit codes follow the usual linter convention:

* ``0`` — clean (no findings after pragma/baseline suppression);
* ``1`` — findings reported (or manifest drift in ``--check-manifest``);
* ``2`` — usage error: bad paths, unparsable source, unknown rule ids,
  corrupt baseline.

Two fast-path modes ride on the same loader:

* ``--changed [REF]`` — lint only the ``*.py`` files changed since
  ``REF`` (default ``HEAD``) plus untracked ones, intersected with any
  given paths.  The pre-push loop: seconds instead of a full tree walk.
* ``--write-manifest`` / ``--check-manifest`` — emit or diff the
  machine-readable effects manifest instead of lint findings (the CI
  drift gate for :mod:`repro.analysis.manifest`).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from repro.analysis.engine import analyze_modules
from repro.analysis.loader import AnalysisUsageError, load_paths
from repro.analysis.manifest import (
    build_manifest,
    diff_manifests,
    load_manifest,
    write_manifest,
)
from repro.analysis.report import Baseline
from repro.analysis.rules.base import ALL_RULES

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="glint",
        description=(
            "AST-based static analysis for GUESSTIMATE operation code "
            "(determinism, dirty-tracking, completion safety, spec "
            "conformance, seed plumbing, effect inference)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (directories recurse over *.py)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        help="write the report to this file as well as stdout",
    )
    parser.add_argument(
        "--baseline",
        help="baseline file of accepted findings to suppress",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write current findings to PATH as the new baseline and exit 0",
    )
    parser.add_argument(
        "--root",
        help="anchor for repo-relative display paths (default: cwd)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="REF",
        help=(
            "lint only *.py files changed since REF (default HEAD) plus "
            "untracked ones, intersected with any given paths"
        ),
    )
    parser.add_argument(
        "--write-manifest",
        metavar="PATH",
        help="write the effects manifest for the given paths to PATH and exit",
    )
    parser.add_argument(
        "--check-manifest",
        metavar="PATH",
        help=(
            "rebuild the effects manifest and diff it against the committed "
            "one at PATH; any drift exits 1"
        ),
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    return parser


def _git_lines(repo_args: list[str]) -> list[str]:
    completed = subprocess.run(
        ["git", *repo_args],
        capture_output=True,
        text=True,
        check=True,
    )
    return [line for line in completed.stdout.splitlines() if line.strip()]


def changed_python_files(ref: str) -> list[Path]:
    """Absolute paths of ``*.py`` files changed since ``ref`` + untracked."""
    try:
        toplevel = Path(_git_lines(["rev-parse", "--show-toplevel"])[0])
    except (subprocess.CalledProcessError, FileNotFoundError, IndexError) as exc:
        raise AnalysisUsageError(f"--changed needs a git checkout: {exc}") from exc
    try:
        _git_lines(["rev-parse", "--verify", "--quiet", f"{ref}^{{commit}}"])
    except subprocess.CalledProcessError as exc:
        # The nargs='?' flag eats a following path: --changed src/ puts
        # 'src/' here.  Say so instead of dumping git's stderr.
        raise AnalysisUsageError(
            f"--changed: {ref!r} is not a git revision "
            f"(paths go before the flag: glint <paths> --changed [REF])"
        ) from exc
    try:
        changed = _git_lines(["diff", "--name-only", ref, "--", "*.py"])
        untracked = _git_lines(
            ["ls-files", "--others", "--exclude-standard", "--", "*.py"]
        )
    except subprocess.CalledProcessError as exc:
        raise AnalysisUsageError(f"--changed failed: {exc}") from exc
    files = []
    for name in dict.fromkeys(changed + untracked):  # ordered de-dup
        path = toplevel / name
        if path.suffix == ".py" and path.is_file():
            files.append(path)
    return files


def _restrict_to(files: list[Path], scopes: list[str]) -> list[Path]:
    """Keep files that equal, or live under, one of the given paths."""
    if not scopes:
        return files
    anchors = [Path(scope).resolve() for scope in scopes]
    kept = []
    for path in files:
        resolved = path.resolve()
        for anchor in anchors:
            if resolved == anchor or anchor in resolved.parents:
                kept.append(path)
                break
    return kept


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.id}  {rule.title}")
            print(f"       {rule.rationale}")
        return EXIT_CLEAN

    if not args.paths and args.changed is None:
        parser.print_usage(sys.stderr)
        print("glint: error: no paths given", file=sys.stderr)
        return EXIT_USAGE

    rule_ids = None
    if args.rules:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        if args.changed is not None:
            targets = _restrict_to(changed_python_files(args.changed), args.paths)
            if not targets:
                print(f"glint: no python files changed since {args.changed}")
                return EXIT_CLEAN
        else:
            targets = args.paths
        modules = load_paths(targets, root=args.root)

        if args.write_manifest or args.check_manifest:
            manifest = build_manifest(modules)
            if args.write_manifest:
                write_manifest(manifest, args.write_manifest)
                print(
                    f"wrote effects manifest for {len(manifest['classes'])} "
                    f"shared class(es) to {args.write_manifest}"
                )
                return EXIT_CLEAN
            committed = load_manifest(args.check_manifest)
            drift = diff_manifests(committed, manifest)
            if drift:
                print(f"effects manifest drift vs {args.check_manifest}:")
                for line in drift:
                    print(f"  {line}")
                print(
                    "regenerate with: glint <paths> --write-manifest "
                    f"{args.check_manifest}"
                )
                return EXIT_FINDINGS
            print(f"effects manifest matches {args.check_manifest}")
            return EXIT_CLEAN

        report = analyze_modules(modules, rule_ids=rule_ids, baseline=baseline)
        if args.write_baseline:
            Baseline().write(args.write_baseline, report)
            print(
                f"wrote {len(report.findings)} finding(s) to "
                f"{args.write_baseline}"
            )
            return EXIT_CLEAN
    except AnalysisUsageError as exc:
        print(f"glint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ValueError as exc:
        print(f"glint: error: {exc}", file=sys.stderr)
        return EXIT_USAGE

    rendered = report.to_json() if args.format == "json" else report.format_text()
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
    return EXIT_FINDINGS if report.findings else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())
