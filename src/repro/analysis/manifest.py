"""The machine-readable effects manifest.

One JSON document per analyzed module set, listing — for every shared
class — each framed operation's declared frame, inferred read/write
footprint (attribute -> access kinds), certified algebra, commutative
marker, and the pairwise op x op interference matrix.  This is the
artifact a commutativity-aware synchronizer consumes: ``disjoint`` and
``commutes`` pairs are exactly the operations it may commit without
the paper's global round order.

The manifest is a *deterministic pure function of the source text*:
built only from the AST, serialized with sorted keys, and
schema-versioned so CI can diff it against a committed baseline and
fail on undeclared drift (the same posture as the glint finding
baseline and the perf gates).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.context import ProjectContext, build_context
from repro.analysis.effects import Footprint, effect_engine
from repro.analysis.loader import SourceModule

MANIFEST_SCHEMA_VERSION = 1


def _operation_entry(
    frame: tuple[str, ...], fp: Footprint, commutative: bool
) -> dict:
    return {
        "declared_frame": sorted(frame),
        "reads": sorted(fp.reads),
        "stray_reads": sorted(fp.stray_reads),
        "writes": {attr: sorted(kinds) for attr, kinds in sorted(fp.writes.items())},
        "algebra": {attr: fp.algebra[attr] for attr in sorted(fp.algebra)},
        "commutative": commutative,
        "complete": fp.complete,
        "opaque": fp.opaque,
    }


def build_manifest(modules: list[SourceModule]) -> dict:
    """The manifest document for one loaded module set."""
    context = build_context(modules)
    return manifest_from_context(context)


def manifest_from_context(context: ProjectContext) -> dict:
    engine = effect_engine(context)
    classes: dict[str, dict] = {}
    for name in sorted(context.shared_classes):
        info = context.shared_classes[name]
        footprints = engine.operation_footprints(info)
        operations = {
            op: _operation_entry(
                info.methods[op].modifies or (),
                fp,
                info.methods[op].commutative,
            )
            for op, fp in footprints.items()
        }
        classes[name] = {
            "module": info.module.display_path,
            "operations": operations,
            "interference": engine.interference_matrix(footprints),
        }
    return {"schema": MANIFEST_SCHEMA_VERSION, "classes": classes}


# ---------------------------------------------------------------------------
# codec


def manifest_to_json(manifest: dict) -> str:
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def manifest_from_json(text: str) -> dict:
    document = json.loads(text)
    if not isinstance(document, dict) or "schema" not in document:
        raise ValueError("not an effects manifest: missing schema field")
    if document["schema"] != MANIFEST_SCHEMA_VERSION:
        raise ValueError(
            f"effects manifest schema {document['schema']!r} is not "
            f"the supported version {MANIFEST_SCHEMA_VERSION}"
        )
    return document


def write_manifest(manifest: dict, path: str | Path) -> None:
    Path(path).write_text(manifest_to_json(manifest), encoding="utf-8")


def load_manifest(path: str | Path) -> dict:
    return manifest_from_json(Path(path).read_text(encoding="utf-8"))


def interference_of(manifest: dict, cls: str, op_a: str, op_b: str) -> str | None:
    """Symmetric matrix lookup (``a|b`` and ``b|a`` are the same key)."""
    matrix = manifest.get("classes", {}).get(cls, {}).get("interference", {})
    a, b = sorted((op_a, op_b))
    return matrix.get(f"{a}|{b}")


# ---------------------------------------------------------------------------
# drift


def diff_manifests(committed: dict, current: dict) -> list[str]:
    """Human-readable drift lines, empty when the manifests agree."""
    lines: list[str] = []
    old_classes = committed.get("classes", {})
    new_classes = current.get("classes", {})
    for name in sorted(set(old_classes) | set(new_classes)):
        if name not in new_classes:
            lines.append(f"class {name}: removed")
            continue
        if name not in old_classes:
            lines.append(f"class {name}: added")
            continue
        old, new = old_classes[name], new_classes[name]
        old_ops, new_ops = old.get("operations", {}), new.get("operations", {})
        for op in sorted(set(old_ops) | set(new_ops)):
            if op not in new_ops:
                lines.append(f"{name}.{op}: operation removed")
            elif op not in old_ops:
                lines.append(f"{name}.{op}: operation added")
            elif old_ops[op] != new_ops[op]:
                changed = sorted(
                    field
                    for field in set(old_ops[op]) | set(new_ops[op])
                    if old_ops[op].get(field) != new_ops[op].get(field)
                )
                lines.append(f"{name}.{op}: changed {', '.join(changed)}")
        if old.get("interference") != new.get("interference"):
            old_m, new_m = old.get("interference", {}), new.get("interference", {})
            pairs = sorted(
                pair
                for pair in set(old_m) | set(new_m)
                if old_m.get(pair) != new_m.get(pair)
            )
            lines.append(f"class {name}: interference changed for {', '.join(pairs)}")
    return lines
