"""Finding / report model, JSON output, and the committed baseline.

A :class:`Finding` is one rule violation anchored to ``file:line``.
Reports serialize to JSON (the CI artifact) and compare against a
committed *baseline* — accepted pre-existing findings keyed by
``(rule, path, symbol)``, deliberately **not** by line number so that
unrelated edits to a file do not churn the baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.loader import AnalysisUsageError

#: bump when the JSON layout changes incompatibly
REPORT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One rule violation."""

    rule: str  # "GL002"
    path: str  # repo-relative posix path
    line: int  # 1-based anchor line
    col: int  # 0-based column
    symbol: str  # "SudokuBoard.load", "AuctionHouse.place_bid.<ensures>"
    message: str
    #: extra lines whose pragma comments also suppress this finding
    #: (typically the enclosing ``def``); not serialized.
    pragma_lines: tuple[int, ...] = field(default=(), compare=False)

    @property
    def anchor(self) -> str:
        return f"{self.path}:{self.line}"

    def baseline_key(self) -> tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def format_text(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.symbol}] {self.message}"


@dataclass
class Report:
    """The outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    rules_run: list[str] = field(default_factory=list)
    suppressed_by_pragma: int = 0
    suppressed_by_baseline: int = 0

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": REPORT_SCHEMA_VERSION,
                "files_analyzed": self.files_analyzed,
                "rules_run": self.rules_run,
                "suppressed_by_pragma": self.suppressed_by_pragma,
                "suppressed_by_baseline": self.suppressed_by_baseline,
                "counts": self.counts_by_rule(),
                "findings": [finding.to_dict() for finding in self.findings],
            },
            indent=2,
            sort_keys=True,
        )

    def format_text(self) -> str:
        lines = [finding.format_text() for finding in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.files_analyzed} file(s)"
        )
        if self.suppressed_by_baseline:
            summary += f", {self.suppressed_by_baseline} baselined"
        if self.suppressed_by_pragma:
            summary += f", {self.suppressed_by_pragma} pragma-suppressed"
        lines.append(summary)
        return "\n".join(lines)


class Baseline:
    """Accepted findings committed to the repo (``glint-baseline.json``)."""

    def __init__(self, keys: set[tuple[str, str, str]] | None = None):
        self.keys = keys if keys is not None else set()

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise AnalysisUsageError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise AnalysisUsageError(f"corrupt baseline {path}: {exc}") from exc
        entries = data.get("findings") if isinstance(data, dict) else None
        if entries is None or not isinstance(entries, list):
            raise AnalysisUsageError(
                f"corrupt baseline {path}: expected an object with a "
                "'findings' list"
            )
        keys: set[tuple[str, str, str]] = set()
        for entry in entries:
            try:
                keys.add((entry["rule"], entry["path"], entry["symbol"]))
            except (TypeError, KeyError) as exc:
                raise AnalysisUsageError(
                    f"corrupt baseline {path}: every entry needs "
                    "rule/path/symbol"
                ) from exc
        return cls(keys)

    @classmethod
    def from_report(cls, report: Report) -> "Baseline":
        return cls({finding.baseline_key() for finding in report.findings})

    def write(self, path: str | Path, report: Report) -> None:
        """Serialize the report's findings as the new baseline."""
        entries = sorted(
            {finding.baseline_key() for finding in report.findings}
        )
        Path(path).write_text(
            json.dumps(
                {
                    "schema": REPORT_SCHEMA_VERSION,
                    "findings": [
                        {"rule": rule, "path": rel, "symbol": symbol}
                        for rule, rel, symbol in entries
                    ],
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    def contains(self, finding: Finding) -> bool:
        return finding.baseline_key() in self.keys

    def apply(self, report: Report) -> Report:
        """Drop baselined findings; counts them in the report."""
        kept = [f for f in report.findings if not self.contains(f)]
        report.suppressed_by_baseline += len(report.findings) - len(kept)
        report.findings = kept
        return report
