"""Project-wide AST index and the scope/alias/mutation scanner.

The checkers share three pieces of knowledge this module computes in
one pass over every loaded module:

* which classes are **shared** (derive from ``GSharedObject`` —
  directly, transitively within the analyzed set, or via the
  ``@shared_type`` registration decorator), and per class: its methods,
  each method's ``@modifies`` frame, its spec clauses, and the
  attributes assigned in ``__init__``;
* which method names are **operations** (carry a ``@modifies`` frame)
  anywhere in the project — completions calling one of these directly
  instead of issuing it is the GL003 hazard;
* which attributes of *client* classes hold **shared replicas** — any
  ``self.X`` passed as the object argument of ``invoke`` /
  ``create_operation`` / ``issue_*`` is one.

Everything is name-based and import-tracked but never executed: the
analysis must hold up on fixture files that deliberately violate the
model.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.loader import SourceModule

#: decorator names recognized as contract clauses
SPEC_DECORATORS = {"requires", "ensures", "modifies", "invariant"}

#: the bare marker decorator certified by GL007 (no call, no arguments)
COMMUTATIVE_DECORATOR = "commutative"

#: methods that are state-transfer / lifecycle machinery, not operations —
#: they mutate by contract and are excluded from GL002's frame check
LIFECYCLE_METHODS = {"__init__", "copy_from", "set_state", "get_state", "clone"}

#: container methods that mutate their receiver in place
MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "sort", "reverse",
    "appendleft", "popleft", "extendleft", "rotate",
    "difference_update", "intersection_update", "symmetric_difference_update",
    "__setitem__", "__delitem__", "write",
}

#: accessor methods that return an interior view of their receiver —
#: mutating the result mutates the receiver (``self.topics[t]`` via
#: ``.get`` / ``.setdefault`` and friends)
PASSTHROUGH_METHODS = {"get", "setdefault", "values", "items", "keys"}

#: API calls whose object argument marks an attribute as a shared replica
ISSUE_CALLS = {"invoke", "create_operation", "issue_operation", "issue_when_possible"}


# ---------------------------------------------------------------------------
# import resolution


def module_import_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> dotted origin for every top-level import.

    ``import random`` -> {"random": "random"};
    ``import random as rnd`` -> {"rnd": "random"};
    ``from time import sleep`` -> {"sleep": "time.sleep"}.
    """
    mapping: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                mapping[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                mapping[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return mapping


def qualified_call_name(
    func: ast.expr, imports: dict[str, str]
) -> str | None:
    """Dotted name of a call target, resolved through the import map.

    ``time.sleep`` with ``import time`` -> "time.sleep";
    ``sleep`` with ``from time import sleep`` -> "time.sleep";
    ``rng.choice`` where ``rng`` is a local -> "rng.choice" (unresolved
    names pass through verbatim so rules can still match bare builtins).
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    parts.reverse()
    head = imports.get(parts[0])
    if head is not None:
        parts[0] = head
    return ".".join(parts)


# ---------------------------------------------------------------------------
# project index


@dataclass
class MethodInfo:
    node: ast.FunctionDef
    name: str
    #: fields declared via @modifies, or None when no frame is declared
    modifies: tuple[str, ...] | None = None
    has_contracts: bool = False
    #: carries the bare @commutative marker (certified by GL007)
    commutative: bool = False
    #: the @commutative decorator node, for anchoring findings
    commutative_node: ast.expr | None = None


@dataclass
class SpecBinding:
    """One contract predicate attached to a class or method."""

    kind: str  # "requires" | "ensures" | "invariant"
    predicate: ast.expr  # Lambda or Name (module-level function ref)
    owner: str  # "Class" or "Class.method"
    method: ast.FunctionDef | None  # None for invariants
    lineno: int


@dataclass
class SharedClassInfo:
    node: ast.ClassDef
    name: str
    module: SourceModule
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    init_attrs: set[str] = field(default_factory=set)
    specs: list[SpecBinding] = field(default_factory=list)


@dataclass
class ProjectContext:
    """Everything the rules know about the analyzed module set."""

    modules: list[SourceModule]
    imports: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class name -> info, for every shared class in the analyzed set
    shared_classes: dict[str, SharedClassInfo] = field(default_factory=dict)
    #: every @modifies-framed method name anywhere in the project
    operation_names: set[str] = field(default_factory=set)

    def imports_of(self, module: SourceModule) -> dict[str, str]:
        return self.imports[module.display_path]


def _decorator_call(node: ast.expr) -> tuple[str, ast.Call] | None:
    """(bare decorator name, call node) for ``@name(...)`` decorators."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    name = None
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute):
        name = func.attr
    if name in SPEC_DECORATORS:
        return name, node
    return None


def _base_names(node: ast.ClassDef) -> set[str]:
    names: set[str] = set()
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _has_shared_type_decorator(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "shared_type":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "shared_type":
            return True
    return False


def _collect_method(method: ast.FunctionDef) -> MethodInfo:
    info = MethodInfo(node=method, name=method.name)
    for dec in method.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        bare = (
            target.id
            if isinstance(target, ast.Name)
            else target.attr
            if isinstance(target, ast.Attribute)
            else None
        )
        if bare == COMMUTATIVE_DECORATOR and not isinstance(dec, ast.Call):
            info.commutative = True
            info.commutative_node = dec
            continue
        found = _decorator_call(dec)
        if found is None:
            continue
        name, call = found
        info.has_contracts = True
        if name == "modifies":
            fields_: list[str] = []
            for arg in call.args:
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    fields_.append(arg.value)
            info.modifies = tuple(fields_)
    return info


def _collect_specs(cls: ast.ClassDef, info: SharedClassInfo) -> None:
    for dec in cls.decorator_list:
        found = _decorator_call(dec)
        if found and found[0] == "invariant" and found[1].args:
            info.specs.append(
                SpecBinding(
                    kind="invariant",
                    predicate=found[1].args[0],
                    owner=info.name,
                    method=None,
                    lineno=dec.lineno,
                )
            )
    for method_info in info.methods.values():
        for dec in method_info.node.decorator_list:
            found = _decorator_call(dec)
            if found and found[0] in ("requires", "ensures") and found[1].args:
                info.specs.append(
                    SpecBinding(
                        kind=found[0],
                        predicate=found[1].args[0],
                        owner=f"{info.name}.{method_info.name}",
                        method=method_info.node,
                        lineno=dec.lineno,
                    )
                )


def _init_attrs(cls_info: SharedClassInfo) -> set[str]:
    init = cls_info.methods.get("__init__")
    if init is None:
        return set()
    attrs: set[str] = set()
    for node in ast.walk(init.node):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attrs.add(target.attr)
    return attrs


def build_context(modules: list[SourceModule]) -> ProjectContext:
    context = ProjectContext(modules=modules)
    class_bases: dict[str, set[str]] = {}
    class_nodes: dict[str, tuple[ast.ClassDef, SourceModule]] = {}

    for module in modules:
        context.imports[module.display_path] = module_import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                class_bases[node.name] = _base_names(node)
                class_nodes.setdefault(node.name, (node, module))

    # Transitive GSharedObject descent within the analyzed set, plus
    # @shared_type as an independent registration signal.
    shared_names: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, bases in class_bases.items():
            if name in shared_names:
                continue
            if "GSharedObject" in bases or bases & shared_names:
                shared_names.add(name)
                changed = True
    for name, (node, _module) in class_nodes.items():
        if name not in shared_names and _has_shared_type_decorator(node):
            shared_names.add(name)

    for name in shared_names:
        node, module = class_nodes[name]
        info = SharedClassInfo(node=node, name=name, module=module)
        for item in node.body:
            if isinstance(item, ast.FunctionDef):
                info.methods[item.name] = _collect_method(item)
        info.init_attrs = _init_attrs(info)
        _collect_specs(node, info)
        context.shared_classes[name] = info
        for method_info in info.methods.values():
            if method_info.modifies is not None:
                context.operation_names.add(method_info.name)

    return context


# ---------------------------------------------------------------------------
# scope / alias / mutation scanning


@dataclass(frozen=True)
class Mutation:
    """One in-place mutation detected inside a function body."""

    node: ast.AST  # anchor (has lineno/col_offset)
    root: str  # the tracked root the mutated expression resolves to
    kind: str  # "assign" | "augassign" | "delete" | "call:<method>"
    target_text: str  # source-ish rendering of the mutated expression


def _expr_text(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # type: ignore[arg-type]
    except Exception:  # pragma: no cover - unparse is total on exprs
        return "<expr>"


class ScopeScanner:
    """Tracks which local names alias which roots, and finds mutations.

    ``roots`` seeds the tracked set: ``{"self.items": "items"}`` style
    is flattened to expression-root keys — ``self`` attribute roots are
    tracked per attribute, plain names (``board``) per name.  Alias
    propagation is linear and syntactic: ``x = self.items`` /
    ``x = self.items[k]`` / ``for x in self.items.values():`` all make
    ``x`` an alias of root ``items``.
    """

    def __init__(
        self,
        self_attrs: set[str] | None = None,
        names: dict[str, str] | None = None,
        any_self_attr: bool = False,
    ):
        #: self.<attr> roots to track ("items"); ignored unless matched
        self.self_attrs = set(self_attrs or ())
        #: plain-name roots to track: local name -> reported root label
        self.names = dict(names or {})
        #: track every self.<attr> (GL002 over a whole method body)
        self.any_self_attr = any_self_attr
        #: local aliases: name -> reported root label
        self.aliases: dict[str, str] = {}
        self.mutations: list[Mutation] = []

    # -- root resolution -----------------------------------------------------

    def _resolve(self, node: ast.expr) -> str | None:
        """Reported root label for an expression, or None if untracked."""
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in PASSTHROUGH_METHODS
                ):
                    node = func.value
                else:
                    return None
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    attr = node.attr
                    if self.any_self_attr or attr in self.self_attrs:
                        return f"self.{attr}"
                    return None
                node = node.value
            elif isinstance(node, ast.Name):
                if node.id in self.names:
                    return self.names[node.id]
                return self.aliases.get(node.id)
            else:
                return None

    def _deep_resolve(self, node: ast.expr) -> str | None:
        """Like _resolve but also matches nested roots of attribute
        chains rooted at tracked plain names (``board.topics[...]``)."""
        return self._resolve(node)

    # -- traversal -----------------------------------------------------------

    def scan(self, body: list[ast.stmt]) -> list[Mutation]:
        for stmt in body:
            self._stmt(stmt)
        return self.mutations

    def _record(self, node: ast.AST, root: str, kind: str, target: ast.AST) -> None:
        self.mutations.append(
            Mutation(node=node, root=root, kind=kind, target_text=_expr_text(target))
        )

    def _bind_alias(self, name: str, value: ast.expr) -> None:
        root = self._resolve(value)
        if root is not None:
            self.aliases[name] = root
        else:
            self.aliases.pop(name, None)

    def _bind_target(self, target: ast.expr, value: ast.expr | None) -> None:
        """Handle the *binding* side of an assignment (alias tracking)."""
        if isinstance(target, ast.Name) and value is not None:
            self._bind_alias(target.id, value)
        elif isinstance(target, (ast.Tuple, ast.List)) and value is not None:
            root = self._resolve(value)
            for element in target.elts:
                if isinstance(element, ast.Name):
                    if root is not None:
                        self.aliases[element.id] = root
                    else:
                        self.aliases.pop(element.id, None)

    def _mutation_target(self, target: ast.expr, node: ast.AST, kind: str) -> None:
        """Handle the *mutating* side of an assignment target."""
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._mutation_target(element, node, kind)
            return
        if isinstance(target, ast.Name):
            return  # rebinding a local is not a state mutation
        root = self._resolve(target)
        if root is not None:
            self._record(node, root, kind, target)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._mutation_target(target, stmt, "assign")
            for target in stmt.targets:
                self._bind_target(target, stmt.value)
            self._expr(stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.target is not None:
                self._mutation_target(stmt.target, stmt, "assign")
                if stmt.value is not None:
                    self._bind_target(stmt.target, stmt.value)
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            root = self._resolve(stmt.target)
            if root is not None:
                self._record(stmt, root, "augassign", stmt.target)
            self._expr(stmt.value)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.aliases.pop(target.id, None)
                    continue
                root = self._resolve(target)
                if root is not None:
                    self._record(stmt, root, "delete", target)
        elif isinstance(stmt, ast.For):
            self._bind_target(stmt.target, stmt.iter)
            self._expr(stmt.iter)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.While):
            self._expr(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.If):
            self._expr(stmt.test)
            for sub in stmt.body + stmt.orelse:
                self._stmt(sub)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                self._expr(item.context_expr)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self._bind_alias(item.optional_vars.id, item.context_expr)
            for sub in stmt.body:
                self._stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body + stmt.orelse + stmt.finalbody:
                self._stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._stmt(sub)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                self._expr(stmt.value)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            pass  # nested scopes are scanned by their own rules
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child)
                elif isinstance(child, ast.stmt):
                    self._stmt(child)

    def _expr(self, expr: ast.expr) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr in MUTATING_METHODS:
                    root = self._resolve(node.func.value)
                    if root is not None:
                        self._record(
                            node, root, f"call:{node.func.attr}", node.func
                        )


# ---------------------------------------------------------------------------
# shared-replica roots in client / script code


def shared_attr_roots(cls: ast.ClassDef) -> set[str]:
    """``self.X`` attributes this class passes to issuing API calls.

    ``self.api.invoke(self.board, ...)`` marks ``board`` as a shared
    replica attribute; GL003 treats direct mutation through it inside a
    completion as a violation.
    """
    attrs: set[str] = set()
    for node in ast.walk(cls):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ISSUE_CALLS:
            continue
        if node.args:
            first = node.args[0]
            if (
                isinstance(first, ast.Attribute)
                and isinstance(first.value, ast.Name)
                and first.value.id == "self"
            ):
                attrs.add(first.attr)
    return attrs


def replica_name_roots(scope: ast.AST) -> dict[str, str]:
    """Plain names bound from ``create_instance`` / ``join_instance``.

    ``board = api.create_instance(MessageBoard)`` makes ``board`` a
    shared-replica root in this scope — mutating it directly bypasses
    the runtime's dirty tracking entirely.
    """
    roots: dict[str, str] = {}
    for node in ast.walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in ("create_instance", "join_instance")
        ):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                roots[target.id] = target.id
    return roots


def reading_blocks(scope: ast.AST) -> list[tuple[ast.With, str]]:
    """``with <api>.reading(obj) as name:`` blocks and their bound name."""
    blocks: list[tuple[ast.With, str]] = []
    for node in ast.walk(scope):
        if not isinstance(node, ast.With):
            continue
        for item in node.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr == "reading"
                and isinstance(item.optional_vars, ast.Name)
            ):
                blocks.append((node, item.optional_vars.id))
    return blocks


def function_params(node: ast.expr | ast.FunctionDef) -> list[str] | None:
    """Positional parameter names of a Lambda/FunctionDef.

    Returns None when the callable has ``*args``/``**kwargs`` (arity
    checks are skipped for variadic predicates).
    """
    if isinstance(node, (ast.Lambda, ast.FunctionDef, ast.AsyncFunctionDef)):
        args = node.args
    else:
        return None
    if args.vararg is not None or args.kwarg is not None:
        return None
    return [a.arg for a in args.posonlyargs + args.args]
