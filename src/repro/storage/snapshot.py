"""Committed-state snapshots with atomic replacement.

A snapshot bounds recovery replay: it captures the shared-object states
at a known point of the globally-ordered commit log, so recovery loads
the snapshot and replays only the WAL suffix past ``wal_index``.

Writes are crash-safe the standard way: serialize to a temporary file
in the same directory, flush + fsync it, then ``os.replace`` onto the
final name (atomic on POSIX).  A crash mid-write leaves either the old
snapshot or the new one, never a torn file; stray temporaries are
ignored (and cleaned) on load.  The body carries a CRC so silent
on-disk corruption is detected rather than trusted.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass

from repro.errors import StorageError
from repro.storage.wal import StorageStats

_FILENAME = "snapshot.json"
_TMP_PREFIX = "snapshot.tmp"


@dataclass(frozen=True)
class SnapshotData:
    """One recovered snapshot.

    ``states`` is the serializable committed-store image
    (``{unique id: (type name, state dict)}``), ``completed_count`` the
    global |C| at the snapshot point, ``wal_index`` the last WAL record
    the snapshot covers (0 = none).
    """

    states: dict[str, tuple[str, dict]]
    completed_count: int
    wal_index: int


class SnapshotStore:
    """Owns the single latest snapshot file in a directory."""

    def __init__(self, directory: str, stats: StorageStats | None = None):
        self.directory = directory
        self.stats = stats if stats is not None else StorageStats()
        os.makedirs(directory, exist_ok=True)
        self._counter = 0

    @property
    def path(self) -> str:
        return os.path.join(self.directory, _FILENAME)

    def save(
        self, states: dict[str, tuple[str, dict]], completed_count: int, wal_index: int
    ) -> None:
        """Atomically replace the snapshot."""
        body = {
            "states": {uid: list(entry) for uid, entry in states.items()},
            "completed_count": completed_count,
            "wal_index": wal_index,
        }
        body_text = json.dumps(body, sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body_text.encode("utf-8")) & 0xFFFFFFFF
        blob = json.dumps({"crc": f"{crc:08x}", "body": body_text}).encode("utf-8")
        self._counter += 1
        tmp_path = os.path.join(
            self.directory, f"{_TMP_PREFIX}.{os.getpid()}.{self._counter}"
        )
        with open(tmp_path, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, self.path)
        self.stats.snapshots_written += 1
        self.stats.snapshot_bytes += len(blob)
        self.stats.fsyncs += 1

    def load(self) -> SnapshotData | None:
        """The latest snapshot, or None if none was ever written."""
        self._sweep_temporaries()
        if not os.path.exists(self.path):
            return None
        with open(self.path, "rb") as handle:
            blob = handle.read()
        try:
            wrapper = json.loads(blob.decode("utf-8"))
            body_text = wrapper["body"]
            expected = int(wrapper["crc"], 16)
        except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError, ValueError):
            raise StorageError(f"malformed snapshot file {self.path}") from None
        actual = zlib.crc32(body_text.encode("utf-8")) & 0xFFFFFFFF
        if actual != expected:
            raise StorageError(
                f"snapshot CRC mismatch in {self.path}: "
                f"expected {expected:08x}, got {actual:08x}"
            )
        body = json.loads(body_text)
        states = {uid: tuple(entry) for uid, entry in body["states"].items()}
        return SnapshotData(
            states=states,
            completed_count=body["completed_count"],
            wal_index=body["wal_index"],
        )

    def _sweep_temporaries(self) -> None:
        """Remove leftovers from writes interrupted before the rename."""
        for name in os.listdir(self.directory):
            if name.startswith(_TMP_PREFIX):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - concurrent sweep
                    pass
