"""Registry-based deterministic serializer (JSON lines).

Everything the durability layer writes — and everything a future real
transport would ship — is a frozen dataclass of plain values.  This
module maps each registered class to a canonical JSON object::

    {"t": "<type name>", "d": {<field>: <value>, ...}}

encoded with sorted keys and minimal separators, so the same value
always produces the same bytes (CRC framing in the WAL depends on
this).  JSON cannot represent tuples, so each registered class may
declare per-field *revivers* that rebuild tuples (or other plain
shapes) on decode; round-tripping any registered value through
:func:`encode_line`/:func:`decode_line` is the identity.

All protocol messages from :mod:`repro.runtime.messages` are registered
here at import time; storage records register themselves in
:mod:`repro.storage.store`.
"""

from __future__ import annotations

import json
from dataclasses import fields, is_dataclass
from typing import Any, Callable, Type

from repro.errors import SerializationError
from repro.runtime import messages as msg

#: type name -> (class, {field name: reviver})
_WIRE_REGISTRY: dict[str, tuple[type, dict[str, Callable[[Any], Any]]]] = {}

#: type name -> tuple of field names, resolved once per class — the
#: hot encode path runs per message per peer, so the per-call
#: ``dataclasses.fields`` walk (descriptor lookups + tuple build) is
#: measurable; see docs/PROFILING.md.
_FIELD_CACHE: dict[str, tuple[str, ...]] = {}


def register_wire_type(
    cls: Type | None = None, **revivers: Callable[[Any], Any]
):
    """Register a dataclass for wire encoding.

    Usable as a plain call or a decorator.  ``revivers`` maps field
    names to functions applied on decode (e.g. ``order=tuple`` to turn
    the JSON list back into the tuple the dataclass was built with).
    """

    def _register(target: Type) -> Type:
        if not is_dataclass(target):
            raise SerializationError(
                f"wire types must be dataclasses, got {target.__name__}"
            )
        field_names = {f.name for f in fields(target)}
        unknown = set(revivers) - field_names
        if unknown:
            raise SerializationError(
                f"revivers for unknown fields {sorted(unknown)} on "
                f"{target.__name__}"
            )
        existing = _WIRE_REGISTRY.get(target.__name__)
        if existing is not None and existing[0] is not target:
            raise SerializationError(
                f"wire type name {target.__name__!r} already registered by "
                "a different class"
            )
        _WIRE_REGISTRY[target.__name__] = (target, dict(revivers))
        return target

    if cls is not None:
        return _register(cls)
    return _register


def registered_wire_types() -> list[str]:
    return sorted(_WIRE_REGISTRY)


def encode_wire(obj: Any) -> dict[str, Any]:
    """Encode a registered dataclass instance to a plain dict."""
    name = type(obj).__name__
    entry = _WIRE_REGISTRY.get(name)
    if entry is None or not isinstance(obj, entry[0]):
        raise SerializationError(
            f"{name!r} is not a registered wire type; call register_wire_type"
        )
    names = _FIELD_CACHE.get(name)
    if names is None:
        names = tuple(f.name for f in fields(entry[0]))
        _FIELD_CACHE[name] = names
    data = {field_name: getattr(obj, field_name) for field_name in names}
    return {"t": name, "d": data}


def decode_wire(payload: dict[str, Any]) -> Any:
    """Decode the output of :func:`encode_wire` back to an instance."""
    try:
        name = payload["t"]
        data = payload["d"]
    except (TypeError, KeyError):
        raise SerializationError(f"malformed wire payload: {payload!r}") from None
    if not isinstance(data, dict):
        raise SerializationError(f"malformed wire payload: {payload!r}")
    entry = _WIRE_REGISTRY.get(name)
    if entry is None:
        raise SerializationError(f"unknown wire type {name!r}")
    cls, revivers = entry
    if revivers:
        # Only classes with revivers need the defensive copy; for the
        # rest the payload dict is consumed as-is (it is always fresh
        # from json.loads on the decode path).
        data = dict(data)
        for field_name, revive in revivers.items():
            if field_name in data:
                data[field_name] = revive(data[field_name])
    try:
        return cls(**data)
    except TypeError as exc:
        raise SerializationError(
            f"cannot rebuild {name} from wire payload: {exc}"
        ) from None


def encode_line(obj: Any) -> bytes:
    """One canonical JSON line (newline-terminated UTF-8 bytes)."""
    try:
        text = json.dumps(
            encode_wire(obj), sort_keys=True, separators=(",", ":")
        )
    except (TypeError, ValueError) as exc:
        raise SerializationError(
            f"value of type {type(obj).__name__} is not JSON-encodable: {exc}"
        ) from None
    return text.encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Any:
    """Inverse of :func:`encode_line`."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed wire line: {exc}") from None
    return decode_wire(payload)


# ---------------------------------------------------------------------------
# Revivers for the protocol message fields JSON flattens
# ---------------------------------------------------------------------------


def _tuple_of_strings(value: list) -> tuple[str, ...]:
    return tuple(value)


def _tuple_of_pairs(value: list) -> tuple[tuple, ...]:
    return tuple(tuple(item) for item in value)


def _snapshot_dict(value: dict) -> dict:
    """Welcome snapshots map id -> (type name, state dict)."""
    return {unique_id: tuple(entry) for unique_id, entry in value.items()}


def _optional_pair(value: list | None) -> tuple | None:
    """Hello.recovered_tail: JSON list back to the OpKey pair (or None)."""
    return None if value is None else tuple(value)


def _optional_pairs(value: list | None) -> tuple[tuple, ...] | None:
    """ApplyAck.counts: a speculative ack's fingerprint (or None)."""
    return None if value is None else tuple(tuple(item) for item in value)


register_wire_type(msg.StartSync, order=_tuple_of_strings)
register_wire_type(msg.YourTurn, order=_tuple_of_strings)
register_wire_type(msg.FlushDone)
register_wire_type(
    msg.BeginApply, order=_tuple_of_strings, counts=_tuple_of_pairs
)
register_wire_type(msg.ApplyAck, counts=_optional_pairs)
register_wire_type(msg.ResendOpsRequest, have=_tuple_of_pairs)
register_wire_type(msg.SyncComplete)
register_wire_type(msg.Hello, recovered_tail=_optional_pair)
register_wire_type(msg.Welcome, snapshot=_snapshot_dict, backlog=_tuple_of_pairs)
register_wire_type(msg.WelcomeAck)
register_wire_type(msg.Goodbye)
register_wire_type(msg.ParticipantRemoved)
register_wire_type(msg.Restart)
register_wire_type(msg.OpMessage)


def _batch_ops(value: list) -> tuple[tuple, ...]:
    """OpBatch.ops: JSON lists back to ((op_number, payload), ...)."""
    return tuple((op_number, payload) for op_number, payload in value)


register_wire_type(msg.OpBatch, ops=_batch_ops)
