"""The durability facade the runtime talks to.

:class:`DurableStore` composes the WAL and the snapshot store into the
three operations the synchronizer needs:

* :meth:`~StorageBackend.append_commit` — log one committed round
  *before* the node acknowledges it (write-ahead ordering);
* :meth:`~StorageBackend.maybe_snapshot` — periodically checkpoint the
  committed state and compact covered WAL segments;
* :meth:`~StorageBackend.recover` — snapshot + WAL-suffix replay after
  a crash.

Two lighter implementations keep the simulator honest without IO:
:class:`MemoryStore` round-trips every record through the codec (so
anything unserializable fails fast) but keeps it in process memory, and
:class:`NullStorage` — the default — does nothing at all, preserving
the seed runtime's zero-IO behavior.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import StorageError
from repro.storage.codec import decode_line, encode_line, register_wire_type
from repro.storage.snapshot import SnapshotData, SnapshotStore
from repro.storage.wal import FSYNC_POLICIES, StorageStats, WriteAheadLog

#: One committed operation inside a CommitRecord:
#: (machine_id, op_number, encoded op payload, result, committed_at).
CommitEntry = tuple

StateProvider = Callable[[], dict]


@dataclass(frozen=True)
class CommitRecord:
    """One globally-ordered synchronization round's committed operations.

    ``entries`` are already sorted in the commit order (lexicographic
    (machineID, operation number), exactly as applied to ``sc``);
    ``completed_after`` is the global |C| after this round, which lets
    recovery re-derive its position in the completed sequence.
    """

    round_id: int
    entries: tuple[CommitEntry, ...]
    completed_after: int


def _revive_entries(value: list) -> tuple[CommitEntry, ...]:
    return tuple(tuple(entry) for entry in value)


register_wire_type(CommitRecord, entries=_revive_entries)


@dataclass
class RecoveredState:
    """What recovery hands back to the node.

    ``states`` + ``base_offset`` come from the snapshot (empty dict and
    0 when recovery starts from the log's beginning); ``commits`` is
    the ordered WAL suffix to replay on top.
    """

    states: dict[str, tuple[str, dict]]
    base_offset: int
    commits: list[CommitRecord]

    @property
    def replay_length(self) -> int:
        return len(self.commits)


class StorageBackend:
    """Interface (and no-op defaults) for the runtime's durability hooks."""

    def __init__(self, snapshot_interval: int = 0):
        if snapshot_interval < 0:
            raise StorageError("snapshot_interval must be >= 0")
        self.snapshot_interval = snapshot_interval
        self.stats = StorageStats()
        self._commits_since_snapshot = 0

    # -- hooks the synchronizer / node call --------------------------------------

    def append_commit(self, record: CommitRecord) -> None:
        """Log one committed round (called before the ApplyAck)."""

    def maybe_snapshot(self, provider: StateProvider, completed_count: int) -> bool:
        """Snapshot if the configured interval elapsed; returns True if taken.

        ``provider`` is called only when a snapshot is actually due, so
        the zero-IO default never pays for state serialization.
        """
        return False

    def rebase(self, states: dict, completed_count: int) -> None:
        """Reset durable state to a full snapshot received from the master.

        Used when a (re)joining node takes the full Welcome snapshot:
        whatever the log held before is superseded.
        """

    def recover(self) -> RecoveredState | None:
        """Rebuild committed state from snapshot + WAL, or None if empty."""
        return None

    def sync(self) -> None:
        """Force buffered records to stable storage."""

    def close(self) -> None:
        """Flush and release any resources (safe to recover() afterwards)."""

    # -- shared snapshot policy ---------------------------------------------------

    def _snapshot_due(self) -> bool:
        return (
            self.snapshot_interval > 0
            and self._commits_since_snapshot >= self.snapshot_interval
        )


class NullStorage(StorageBackend):
    """The simulator default: durability disabled, zero IO, zero state."""

    def __repr__(self) -> str:
        return "NullStorage()"


class MemoryStore(StorageBackend):
    """In-memory backend with real codec round-trips.

    Behaves exactly like :class:`DurableStore` from the runtime's point
    of view — commits are logged, snapshots bound the replay suffix,
    ``recover()`` rebuilds state — but nothing touches the filesystem.
    This is what simulator tests use to exercise crash recovery cheaply.
    """

    def __init__(self, snapshot_interval: int = 0):
        super().__init__(snapshot_interval)
        self._records: list[tuple[int, bytes]] = []
        self._next_index = 1
        self._snapshot: SnapshotData | None = None

    def append_commit(self, record: CommitRecord) -> None:
        line = encode_line(record)  # enforce wire fidelity
        self._records.append((self._next_index, line))
        self._next_index += 1
        self.stats.records_appended += 1
        self.stats.bytes_appended += len(line)
        self._commits_since_snapshot += 1

    def maybe_snapshot(self, provider: StateProvider, completed_count: int) -> bool:
        if not self._snapshot_due():
            return False
        self._take_snapshot(provider(), completed_count)
        return True

    def _take_snapshot(self, states: dict, completed_count: int) -> None:
        wal_index = self._next_index - 1
        self._snapshot = SnapshotData(
            states=dict(states), completed_count=completed_count, wal_index=wal_index
        )
        self._records = [(i, line) for i, line in self._records if i > wal_index]
        self._commits_since_snapshot = 0
        self.stats.snapshots_written += 1

    def rebase(self, states: dict, completed_count: int) -> None:
        self._take_snapshot(states, completed_count)

    def recover(self) -> RecoveredState | None:
        started = time.perf_counter()
        snapshot = self._snapshot
        wal_index = snapshot.wal_index if snapshot is not None else 0
        commits = [
            decode_line(line) for index, line in self._records if index > wal_index
        ]
        if snapshot is None and not commits:
            return None
        self.stats.recoveries += 1
        self.stats.last_replay_length = len(commits)
        self.stats.last_recovery_seconds = time.perf_counter() - started
        return RecoveredState(
            states=dict(snapshot.states) if snapshot is not None else {},
            base_offset=snapshot.completed_count if snapshot is not None else 0,
            commits=commits,
        )

    def __repr__(self) -> str:
        return f"MemoryStore(records={len(self._records)})"


class DurableStore(StorageBackend):
    """WAL + snapshots on disk, one directory per machine."""

    def __init__(
        self,
        directory: str,
        fsync: str = "interval",
        fsync_interval: int = 8,
        segment_max_bytes: int = 256_000,
        snapshot_interval: int = 0,
    ):
        super().__init__(snapshot_interval)
        self.directory = directory
        self.wal = WriteAheadLog(
            directory,
            fsync=fsync,
            fsync_interval=fsync_interval,
            segment_max_bytes=segment_max_bytes,
            stats=self.stats,
        )
        self.snapshots = SnapshotStore(directory, stats=self.stats)

    def append_commit(self, record: CommitRecord) -> None:
        self.wal.append(record)
        self._commits_since_snapshot += 1

    def maybe_snapshot(self, provider: StateProvider, completed_count: int) -> bool:
        if not self._snapshot_due():
            return False
        self._take_snapshot(provider(), completed_count)
        return True

    def _take_snapshot(self, states: dict, completed_count: int) -> None:
        self.wal.sync()  # the snapshot must not be ahead of the log
        wal_index = self.wal.next_index - 1
        self.snapshots.save(states, completed_count, wal_index)
        self.wal.compact(wal_index)
        self._commits_since_snapshot = 0

    def rebase(self, states: dict, completed_count: int) -> None:
        self._take_snapshot(states, completed_count)

    def recover(self) -> RecoveredState | None:
        started = time.perf_counter()
        snapshot = self.snapshots.load()
        wal_index = snapshot.wal_index if snapshot is not None else 0
        commits = [
            record
            for index, record in self.wal.replay()
            if index > wal_index and isinstance(record, CommitRecord)
        ]
        if snapshot is None and not commits:
            return None
        self.stats.recoveries += 1
        self.stats.last_replay_length = len(commits)
        self.stats.last_recovery_seconds = time.perf_counter() - started
        return RecoveredState(
            states=dict(snapshot.states) if snapshot is not None else {},
            base_offset=snapshot.completed_count if snapshot is not None else 0,
            commits=commits,
        )

    def sync(self) -> None:
        self.wal.sync()

    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:
        return f"DurableStore({self.directory!r})"


def build_storage(config, machine_id: str) -> StorageBackend:
    """Build the backend selected by ``RuntimeConfig`` durability knobs."""
    durability = getattr(config, "durability", "off")
    if durability == "off":
        return NullStorage()
    if durability == "memory":
        return MemoryStore(snapshot_interval=config.snapshot_interval)
    if durability == "disk":
        if not config.data_dir:
            raise StorageError("durability='disk' requires data_dir to be set")
        if config.fsync_policy not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {config.fsync_policy!r}; "
                f"choose from {FSYNC_POLICIES}"
            )
        return DurableStore(
            os.path.join(config.data_dir, machine_id),
            fsync=config.fsync_policy,
            fsync_interval=config.fsync_interval,
            segment_max_bytes=config.wal_segment_bytes,
            snapshot_interval=config.snapshot_interval,
        )
    raise StorageError(
        f"unknown durability mode {durability!r}; choose off, memory or disk"
    )
