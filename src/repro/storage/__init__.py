"""Durability subsystem: write-ahead log, snapshots, crash recovery.

The simulated runtime keeps everything in memory, so a crashed node
loses its committed state ``sc``, its pending list ``P`` and its
position in the completed sequence ``C``.  This package provides the
standard substrate for surviving that: a durable log of the
globally-ordered committed operations plus periodic snapshots.

* :mod:`repro.storage.codec` — registry-based deterministic JSON-lines
  serializer for every protocol message and storage record (reusable by
  a real network transport).
* :mod:`repro.storage.wal` — segmented append-only log with per-record
  CRC32 framing, configurable fsync policy, and a tail-scan that drops
  torn/corrupt final records instead of failing.
* :mod:`repro.storage.snapshot` — atomic committed-state snapshots plus
  WAL segment compaction.
* :mod:`repro.storage.store` — the :class:`~repro.storage.store.DurableStore`
  facade the runtime talks to, plus in-memory and null implementations
  so the simulator default stays zero-IO.
"""

from repro.storage.codec import decode_line, decode_wire, encode_line, encode_wire
from repro.storage.snapshot import SnapshotData, SnapshotStore
from repro.storage.store import (
    CommitRecord,
    DurableStore,
    MemoryStore,
    NullStorage,
    RecoveredState,
    StorageBackend,
    build_storage,
)
from repro.storage.wal import StorageStats, WriteAheadLog

__all__ = [
    "CommitRecord",
    "DurableStore",
    "MemoryStore",
    "NullStorage",
    "RecoveredState",
    "SnapshotData",
    "SnapshotStore",
    "StorageBackend",
    "StorageStats",
    "WriteAheadLog",
    "build_storage",
    "decode_line",
    "decode_wire",
    "encode_line",
    "encode_wire",
]
