"""Segmented append-only write-ahead log with CRC32 framing.

Layout: a directory of segment files named ``wal-<first index>.log``.
Each record is one text line::

    <crc32 of payload, 8 hex digits> <canonical JSON payload>\\n

Records carry monotonically increasing 1-based indices (implicit from
position).  A segment rolls over once it exceeds
``segment_max_bytes``.

Torn writes are a fact of life for a log that is appended during a
crash, so :meth:`WriteAheadLog.replay` treats damage in the *final*
segment's tail — a truncated last line, a bit-flipped CRC, malformed
JSON — as an interrupted append: the damaged suffix is dropped (and
physically truncated on the next :meth:`open_for_append`) and replay
succeeds with the surviving prefix.  Damage anywhere *before* the final
tail means lost history and raises :class:`~repro.errors.WalCorruptionError`.

Fsync policy:

* ``always``  — fsync after every append (durable, slow);
* ``interval`` — fsync every ``fsync_interval`` appends and on
  :meth:`sync`/:meth:`close` (bounded loss window);
* ``never``   — OS-buffered only (fastest; a power cut may lose the
  un-synced suffix, which the tail-scan then drops cleanly).
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import StorageError, WalCorruptionError
from repro.storage.codec import decode_line, encode_line

FSYNC_POLICIES = ("always", "interval", "never")

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"


@dataclass
class StorageStats:
    """Counters shared by the WAL, snapshot store and facade.

    Surfaced per node through :class:`repro.runtime.metrics.NodeMetrics`
    so experiments can report durability costs next to protocol
    metrics.
    """

    records_appended: int = 0
    bytes_appended: int = 0
    fsyncs: int = 0
    segments_created: int = 0
    segments_compacted: int = 0
    snapshots_written: int = 0
    snapshot_bytes: int = 0
    #: recovery telemetry (filled by the store facade)
    recoveries: int = 0
    last_replay_length: int = 0
    last_recovery_seconds: float = 0.0
    truncated_tail_records: int = 0


@dataclass(frozen=True)
class _Segment:
    path: str
    first_index: int


def _frame(payload: bytes) -> bytes:
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    return f"{crc:08x} ".encode("ascii") + payload


def _unframe(line: bytes) -> bytes:
    """Return the payload of one framed line (without newline) or raise."""
    if len(line) < 10 or line[8:9] != b" ":
        raise WalCorruptionError("record too short or missing CRC separator")
    try:
        expected = int(line[:8], 16)
    except ValueError:
        raise WalCorruptionError("non-hex CRC field") from None
    payload = line[9:]
    actual = zlib.crc32(payload) & 0xFFFFFFFF
    if actual != expected:
        raise WalCorruptionError(
            f"CRC mismatch: expected {expected:08x}, got {actual:08x}"
        )
    return payload


class WriteAheadLog:
    """Append-only segmented log of codec-registered records."""

    def __init__(
        self,
        directory: str,
        fsync: str = "interval",
        fsync_interval: int = 8,
        segment_max_bytes: int = 256_000,
        stats: StorageStats | None = None,
    ):
        if fsync not in FSYNC_POLICIES:
            raise StorageError(
                f"unknown fsync policy {fsync!r}; choose from {FSYNC_POLICIES}"
            )
        if fsync_interval < 1:
            raise StorageError("fsync_interval must be >= 1")
        if segment_max_bytes < 1:
            raise StorageError("segment_max_bytes must be >= 1")
        self.directory = directory
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self.segment_max_bytes = segment_max_bytes
        self.stats = stats if stats is not None else StorageStats()
        os.makedirs(directory, exist_ok=True)
        self._file = None  # open append handle for the active segment
        self._active: _Segment | None = None
        self._active_bytes = 0
        self._appends_since_sync = 0
        self._next_index: int | None = None  # lazy: set by open_for_append
        # Replay and open_for_append both scan the tail; damage on disk
        # must only be counted once until it is physically truncated.
        self._tail_damage_counted = False

    # -- segment discovery ------------------------------------------------------

    def segments(self) -> list[_Segment]:
        """All segment files, ordered by first record index."""
        found = []
        for name in os.listdir(self.directory):
            if not (name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)):
                continue
            middle = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            try:
                first_index = int(middle)
            except ValueError:
                raise StorageError(f"alien file in WAL directory: {name}") from None
            found.append(_Segment(os.path.join(self.directory, name), first_index))
        return sorted(found, key=lambda segment: segment.first_index)

    def _segment_path(self, first_index: int) -> str:
        return os.path.join(
            self.directory, f"{_SEGMENT_PREFIX}{first_index:016d}{_SEGMENT_SUFFIX}"
        )

    # -- replay -----------------------------------------------------------------

    def _scan_segment(
        self, segment: _Segment, is_last: bool
    ) -> tuple[list[tuple[int, Any]], int]:
        """Decode one segment.

        Returns ``(records, good_bytes)`` where ``good_bytes`` is the
        byte offset of the first damaged record (== file size when the
        segment is clean).  Damage in the last segment truncates; damage
        elsewhere raises.
        """
        with open(segment.path, "rb") as handle:
            blob = handle.read()
        records: list[tuple[int, Any]] = []
        index = segment.first_index
        offset = 0
        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            if newline < 0:
                # Torn final write: no newline ever made it out.
                if not is_last:
                    raise WalCorruptionError(
                        f"unterminated record mid-log in {segment.path}"
                    )
                if not self._tail_damage_counted:
                    self.stats.truncated_tail_records += 1
                    self._tail_damage_counted = True
                return records, offset
            line = blob[offset:newline]
            try:
                records.append((index, decode_line(_unframe(line))))
            except Exception as exc:
                if not is_last:
                    raise WalCorruptionError(
                        f"corrupt record {index} mid-log in {segment.path}: {exc}"
                    ) from None
                # Tail damage: drop this record and everything after it.
                if not self._tail_damage_counted:
                    remaining = blob.count(b"\n", offset)
                    self.stats.truncated_tail_records += max(1, remaining)
                    self._tail_damage_counted = True
                return records, offset
            index += 1
            offset = newline + 1
        return records, offset

    def replay(self) -> list[tuple[int, Any]]:
        """All surviving records as ``(index, decoded object)`` pairs.

        Validates every segment; a damaged final tail is dropped (see
        module docstring), damage before it raises
        :class:`~repro.errors.WalCorruptionError`.
        """
        segments = self.segments()
        records: list[tuple[int, Any]] = []
        expected_next = None
        for position, segment in enumerate(segments):
            if expected_next is not None and segment.first_index != expected_next:
                raise WalCorruptionError(
                    f"segment gap: expected first index {expected_next}, "
                    f"found {segment.first_index} in {segment.path}"
                )
            is_last = position == len(segments) - 1
            segment_records, good_bytes = self._scan_segment(segment, is_last)
            if not is_last:
                del good_bytes  # clean by construction (else _scan raised)
            records.extend(segment_records)
            expected_next = segment.first_index + len(segment_records)
        return records

    def __iter__(self) -> Iterator[tuple[int, Any]]:
        return iter(self.replay())

    # -- appending ---------------------------------------------------------------

    def open_for_append(self) -> int:
        """Prepare for appends; returns the next record index.

        Physically truncates any damaged tail found in the last segment
        so new appends never interleave with garbage.
        """
        segments = self.segments()
        next_index = 1
        if segments:
            last = segments[-1]
            for segment in segments[:-1]:
                clean_records, _ = self._scan_segment(segment, is_last=False)
                next_index = segment.first_index + len(clean_records)
            records, good_bytes = self._scan_segment(last, is_last=True)
            size = os.path.getsize(last.path)
            if good_bytes < size:
                with open(last.path, "r+b") as handle:
                    handle.truncate(good_bytes)
                    handle.flush()
                    os.fsync(handle.fileno())
                    self.stats.fsyncs += 1
                self._tail_damage_counted = False  # damage is gone from disk
            next_index = last.first_index + len(records)
            self._active = last
            self._active_bytes = good_bytes
        self._next_index = next_index
        return next_index

    @property
    def next_index(self) -> int:
        if self._next_index is None:
            self.open_for_append()
        assert self._next_index is not None
        return self._next_index

    def _ensure_file(self) -> None:
        if self._file is not None:
            return
        if self._next_index is None:
            self.open_for_append()
        if self._active is None or self._active_bytes >= self.segment_max_bytes:
            self._roll()
            return
        self._file = open(self._active.path, "ab")

    def _roll(self) -> None:
        """Start a fresh segment at the next record index."""
        if self._file is not None:
            self._flush(force=self.fsync != "never")
            self._file.close()
            self._file = None
        assert self._next_index is not None
        self._active = _Segment(
            self._segment_path(self._next_index), self._next_index
        )
        self._file = open(self._active.path, "ab")
        self._active_bytes = 0
        self.stats.segments_created += 1

    def append(self, record: Any) -> int:
        """Durably append one codec-registered record; returns its index."""
        self._ensure_file()
        assert self._file is not None and self._next_index is not None
        framed = _frame(encode_line(record)[:-1]) + b"\n"
        if self._active_bytes + len(framed) > self.segment_max_bytes and self._active_bytes > 0:
            self._roll()
        self._file.write(framed)
        self._file.flush()
        self._active_bytes += len(framed)
        index = self._next_index
        self._next_index += 1
        self.stats.records_appended += 1
        self.stats.bytes_appended += len(framed)
        self._appends_since_sync += 1
        if self.fsync == "always" or (
            self.fsync == "interval"
            and self._appends_since_sync >= self.fsync_interval
        ):
            self._fsync()
        return index

    def _fsync(self) -> None:
        if self._file is None:
            return
        os.fsync(self._file.fileno())
        self.stats.fsyncs += 1
        self._appends_since_sync = 0

    def _flush(self, force: bool) -> None:
        if self._file is None:
            return
        self._file.flush()
        if force and self._appends_since_sync:
            self._fsync()

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        self._flush(force=True)

    def close(self) -> None:
        """Flush (and, unless policy is ``never``, fsync) and release."""
        if self._file is not None:
            self._flush(force=self.fsync != "never")
            self._file.close()
            self._file = None
        # Forget position; reopened lazily (and re-scanned) on next use.
        self._active = None
        self._active_bytes = 0
        self._next_index = None

    # -- compaction ----------------------------------------------------------------

    def compact(self, through_index: int) -> int:
        """Delete whole segments whose records are all <= ``through_index``.

        Called after a snapshot covering ``through_index`` has been
        atomically written; returns the number of segments removed.  The
        active (last) segment is never removed.
        """
        segments = self.segments()
        removed = 0
        for position, segment in enumerate(segments):
            is_last = position == len(segments) - 1
            if is_last:
                break
            next_first = segments[position + 1].first_index
            if next_first - 1 <= through_index:
                if self._file is not None and self._active == segment:
                    continue  # pragma: no cover - active is always last
                os.remove(segment.path)
                removed += 1
        self.stats.segments_compacted += removed
        return removed
