"""Workload generation: simulated users driving the applications.

The paper's measurements come from volunteers playing Sudoku on a LAN
for an hour; here the volunteers are :class:`~repro.workloads.drivers.SudokuSession`
players with exponential think times, occasional wrong guesses, and an
on/off activity switch (Figure 6 compares synchronization time "in the
presence and absence of user activity").
"""

from repro.workloads.activity import ActivityModel, ThinkTime
from repro.workloads.drivers import MixedAppSession, SudokuSession
from repro.workloads.traces import OpTrace, TraceRecorder

__all__ = [
    "ActivityModel",
    "MixedAppSession",
    "OpTrace",
    "SudokuSession",
    "ThinkTime",
    "TraceRecorder",
]
