"""User activity models: think times and activity switching."""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ThinkTime:
    """Exponential think time with a floor (humans need a beat to click).

    ``mean`` is the average gap between a user's actions in seconds;
    the paper's Sudoku volunteers were "high user activity", which the
    defaults approximate (one action every ~4 s per user).
    """

    mean: float = 4.0
    floor: float = 0.3

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.expovariate(1.0 / self.mean))


@dataclass
class ActivityModel:
    """Whether (and how fast) a simulated user acts.

    ``active=False`` models the Figure 6 "no user activity" series:
    users are present (their machines participate in every
    synchronization) but never issue operations.
    """

    active: bool = True
    think: ThinkTime = ThinkTime()
    #: probability an action is a deliberate wrong guess (drives the
    #: conflict rate together with the cell-collision probability).
    mistake_rate: float = 0.1

    def next_delay(self, rng: random.Random) -> float:
        return self.think.sample(rng)

    @classmethod
    def idle(cls) -> "ActivityModel":
        return cls(active=False)

    @classmethod
    def busy(cls, mean_think: float = 2.0) -> "ActivityModel":
        return cls(active=True, think=ThinkTime(mean=mean_think))
