"""Operation traces: record what users did, replay it elsewhere.

Recording the issue stream of a session gives (a) deterministic
regression workloads, (b) a way to replay the exact same user behaviour
against a *baseline* runtime (the responsiveness ablation needs the
same ops hitting GUESSTIMATE and one-copy serializability), and (c) a
serialization exerciser — every recorded op goes through the wire
format.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.operations import SharedOp
from repro.core.serialization import decode_op, encode_op


@dataclass(frozen=True)
class TraceEntry:
    """One issued operation: when, by whom, what."""

    time: float
    machine_id: str
    payload: dict

    def decode(self) -> SharedOp:
        return decode_op(self.payload)


@dataclass
class OpTrace:
    """An ordered record of issued operations."""

    entries: list[TraceEntry] = field(default_factory=list)

    def append(self, time: float, machine_id: str, op: SharedOp) -> None:
        self.entries.append(TraceEntry(time, machine_id, encode_op(op)))

    def __len__(self) -> int:
        return len(self.entries)

    def machines(self) -> list[str]:
        return sorted({entry.machine_id for entry in self.entries})

    def for_machine(self, machine_id: str) -> list[TraceEntry]:
        return [e for e in self.entries if e.machine_id == machine_id]

    # -- persistence ---------------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            [
                {"t": entry.time, "m": entry.machine_id, "op": entry.payload}
                for entry in self.entries
            ]
        )

    @classmethod
    def from_json(cls, text: str) -> "OpTrace":
        trace = cls()
        for item in json.loads(text):
            trace.entries.append(TraceEntry(item["t"], item["m"], item["op"]))
        return trace


class TraceRecorder:
    """Hooks a :class:`~repro.runtime.system.DistributedSystem` and
    records every issued operation into an :class:`OpTrace`."""

    def __init__(self, system) -> None:
        self.trace = OpTrace()
        self.system = system
        self._original_hooks = {}
        for machine_id, node in system.nodes.items():
            self._wrap(machine_id, node)

    def _wrap(self, machine_id: str, node) -> None:
        original = node.notify_issued

        def recording(entry, original=original, machine_id=machine_id):
            self.trace.append(node.scheduler.now(), machine_id, entry.op)
            original(entry)

        self._original_hooks[machine_id] = original
        node.notify_issued = recording

    def detach(self) -> OpTrace:
        """Stop recording and return the trace."""
        for machine_id, node in self.system.nodes.items():
            original = self._original_hooks.pop(machine_id, None)
            if original is not None:
                node.notify_issued = original
        return self.trace
