"""Session drivers: scripted users playing the applications.

:class:`SudokuSession` reproduces the paper's measurement workload —
N users collaboratively solving shared Sudoku grids — on the
deterministic event loop.  Users act on their own think-time schedules;
when a grid fills up it is replaced with a freshly generated one, so an
hour-long run keeps everyone busy ("8 users solving 2 Sudoku grids").

:class:`MixedAppSession` drives the other applications (planner, board,
car pool, auction, microblog) with a per-app operation mix; it powers
the cross-application tests and the responsiveness ablation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.sudoku import SudokuClient, generate_puzzle

from repro.runtime.system import DistributedSystem
from repro.workloads.activity import ActivityModel


@dataclass
class SessionStats:
    """What a session driver observed (issue-side view)."""

    actions: int = 0
    fills_attempted: int = 0
    fills_rejected_locally: int = 0
    grids_completed: int = 0
    mistakes_erased: int = 0
    per_user_actions: dict[str, int] = field(default_factory=dict)


class SudokuSession:
    """N simulated players solving shared grids on one system."""

    def __init__(
        self,
        system: DistributedSystem,
        n_grids: int = 2,
        activity: ActivityModel | None = None,
        seed: int = 0,
        clues: int = 38,
        unique_puzzles: bool = False,
    ):
        self.system = system
        self.activity = activity if activity is not None else ActivityModel()
        self.rng = random.Random(seed)
        self.clues = clues
        self.unique_puzzles = unique_puzzles
        self.stats = SessionStats()
        self._stopped = False
        self._grids: list[_GridState] = []
        self._players: dict[str, list[SudokuClient]] = {}
        self._n_grids = n_grids

    # -- lifecycle -----------------------------------------------------------------

    def setup(self, quiesce_time: float = 60.0) -> None:
        """Create the shared grids and subscribe every machine.

        Runs the system until creation commits so all machines start
        from the same boards (like players gathering before a match).
        Starts periodic synchronization if the caller has not already.
        """
        master = self.system.master_node.master
        if master is not None and not master.running:
            self.system.start()
        machine_ids = self.system.machine_ids()
        creator = self.system.api(machine_ids[0])
        for _ in range(self._n_grids):
            puzzle, solution = generate_puzzle(
                self.rng, clues=self.clues, unique=self.unique_puzzles
            )
            client = SudokuClient.create(creator, puzzle)
            self._grids.append(_GridState(client.board.unique_id, solution))
        self.system.run_until_quiesced(max_time=quiesce_time)
        for machine_id in machine_ids:
            self._join_all(machine_id)

    def add_player(self, machine_id: str) -> None:
        """Subscribe a (possibly late-joining) machine and start it."""
        self._join_all(machine_id)
        self._schedule_player(machine_id)

    def start(self) -> None:
        """Schedule every player's first action."""
        for machine_id in self._players:
            self._schedule_player(machine_id)

    def stop(self) -> None:
        self._stopped = True

    # -- internals ------------------------------------------------------------------

    def _join_all(self, machine_id: str) -> None:
        from repro.errors import UnknownObjectError

        api = self.system.api(machine_id)
        clients: list[SudokuClient | None] = []
        for grid in self._grids:
            try:
                clients.append(SudokuClient.join(api, grid.board_id))
            except UnknownObjectError:
                # Machine still waiting for its welcome snapshot; the
                # client is resolved lazily by _refresh_client.
                clients.append(None)
        self._players[machine_id] = clients

    def _schedule_player(self, machine_id: str) -> None:
        if self._stopped:
            return
        delay = self.activity.next_delay(self.rng)
        self.system.loop.call_later(delay, lambda: self._act(machine_id))

    def _act(self, machine_id: str) -> None:
        if self._stopped:
            return
        node = self.system.nodes.get(machine_id)
        if node is None or node.state == "stopped":
            return
        self._schedule_player(machine_id)
        if not self.activity.active:
            return
        if node.state != "active":
            return  # restarting machines skip their turn
        self.stats.actions += 1
        self.stats.per_user_actions[machine_id] = (
            self.stats.per_user_actions.get(machine_id, 0) + 1
        )
        clients = self._players.get(machine_id)
        if not clients:
            return
        grid_index = self.rng.randrange(len(clients))
        client = self._refresh_client(machine_id, grid_index)
        if client is None:
            return  # the new grid has not committed on this machine yet
        grid = self._grids[grid_index]
        empty = client.empty_cells()
        if not empty:
            self._replace_grid(grid_index)
            return
        row, col = self.rng.choice(empty)
        correct = grid.solution[row - 1][col - 1]
        if self.rng.random() < self.activity.mistake_rate:
            value = self.rng.randint(1, 9)
        else:
            value = correct
        self.stats.fills_attempted += 1
        record = client.fill(row, col, value)
        if record.ticket.status == "rejected":
            self.stats.fills_rejected_locally += 1
            grid.consecutive_rejects += 1
            # A grid can wedge: committed mistakes block the remaining
            # correct values.  Real players eventually spot and erase a
            # wrong entry; the driver does the same once the grid stops
            # accepting fills.
            if grid.consecutive_rejects >= 20:
                grid.consecutive_rejects = 0
                self._erase_a_mistake(client, grid)
        else:
            grid.consecutive_rejects = 0

    def _refresh_client(self, machine_id: str, grid_index: int) -> SudokuClient | None:
        """Resolve the machine's client for the grid's *current* board.

        Grid replacement and machine restarts both invalidate cached
        clients; this lazily re-joins, returning None when the new
        board's creation has not committed on this machine yet.
        """
        grid = self._grids[grid_index]
        api = self.system.api(machine_id)
        client = self._players[machine_id][grid_index]
        stale = (
            client is None
            or client.api is not api
            or client.board.unique_id != grid.board_id
            or not api.model.guess.has(grid.board_id)
        )
        if stale:
            from repro.errors import UnknownObjectError

            try:
                client = SudokuClient.join(api, grid.board_id)
            except UnknownObjectError:
                return None
            self._players[machine_id][grid_index] = client
        return client

    def _replace_grid(self, grid_index: int) -> None:
        """A solved grid is swapped for a fresh puzzle.

        The driver generates a new shared board; every player's cached
        client goes stale and re-joins lazily once the creation commits
        on their machine.
        """
        machine_ids = self.system.machine_ids()
        creator = self.system.api(machine_ids[0])
        puzzle, solution = generate_puzzle(
            self.rng, clues=self.clues, unique=self.unique_puzzles
        )
        from repro.errors import IssueBlockedError

        try:
            client = SudokuClient.create(creator, puzzle)
        except IssueBlockedError:
            return  # mid-window; the next player action will retry
        self.stats.grids_completed += 1
        self._grids[grid_index] = _GridState(client.board.unique_id, solution)
        self._players[machine_ids[0]][grid_index] = client


    def _erase_a_mistake(self, client: SudokuClient, grid: "_GridState") -> None:
        """Clear one committed cell that disagrees with the solution."""
        snapshot = client.snapshot_grid()
        wrong = [
            (r + 1, c + 1)
            for r in range(9)
            for c in range(9)
            if snapshot[r][c] != 0 and snapshot[r][c] != grid.solution[r][c]
        ]
        if not wrong:
            return
        row, col = self.rng.choice(wrong)
        client.erase(row, col)
        self.stats.mistakes_erased += 1


@dataclass
class _GridState:
    board_id: str
    solution: list[list[int]]
    consecutive_rejects: int = 0


class MixedAppSession:
    """Drives an arbitrary set of (client, weighted actions) users.

    ``users`` maps machine id to a list of ``(weight, thunk)`` pairs;
    each action draws a thunk by weight and calls it.  Thunks issue
    operations through app clients, so all window/deferral logic is
    exercised exactly as in production use.
    """

    def __init__(
        self,
        system: DistributedSystem,
        users: dict[str, list[tuple[float, callable]]],
        activity: ActivityModel | None = None,
        seed: int = 0,
    ):
        self.system = system
        self.users = users
        self.activity = activity if activity is not None else ActivityModel()
        self.rng = random.Random(seed)
        self.stats = SessionStats()
        self._stopped = False

    def start(self) -> None:
        for machine_id in self.users:
            self._schedule(machine_id)

    def stop(self) -> None:
        self._stopped = True

    def _schedule(self, machine_id: str) -> None:
        if self._stopped:
            return
        delay = self.activity.next_delay(self.rng)
        self.system.loop.call_later(delay, lambda: self._act(machine_id))

    def _act(self, machine_id: str) -> None:
        if self._stopped:
            return
        self._schedule(machine_id)
        if not self.activity.active:
            return
        actions = self.users.get(machine_id)
        if not actions:
            return
        weights = [weight for weight, _thunk in actions]
        _weight, thunk = self.rng.choices(actions, weights=weights, k=1)[0]
        self.stats.actions += 1
        self.stats.per_user_actions[machine_id] = (
            self.stats.per_user_actions.get(machine_id, 0) + 1
        )
        thunk()
