"""Exception hierarchy for the GUESSTIMATE reproduction.

Every error raised by the library derives from :class:`GuesstimateError`
so callers can catch library failures with a single ``except`` clause.
The hierarchy mirrors the subsystems: core programming model, runtime /
synchronizer, network substrate, specification checking, and the
evaluation kit.
"""

from __future__ import annotations


class GuesstimateError(Exception):
    """Base class for every error raised by this library."""


# ---------------------------------------------------------------------------
# Core programming-model errors
# ---------------------------------------------------------------------------


class SharedObjectError(GuesstimateError):
    """Problems creating, registering, or copying shared objects."""


class UnknownObjectError(SharedObjectError):
    """An operation referenced an object id that is not registered."""

    def __init__(self, unique_id: str):
        super().__init__(f"no shared object registered with id {unique_id!r}")
        self.unique_id = unique_id


class DuplicateObjectError(SharedObjectError):
    """A shared object with this unique id already exists."""

    def __init__(self, unique_id: str):
        super().__init__(f"shared object id {unique_id!r} already registered")
        self.unique_id = unique_id


class NotSubscribedError(SharedObjectError):
    """The machine has not joined the instance it tried to operate on."""

    def __init__(self, unique_id: str):
        super().__init__(
            f"this machine has not joined shared object {unique_id!r}; "
            "call join_instance first"
        )
        self.unique_id = unique_id


class OperationError(GuesstimateError):
    """Problems building or executing shared operations."""


class UnknownMethodError(OperationError):
    """CreateOperation named a method the shared class does not define."""

    def __init__(self, type_name: str, method_name: str):
        super().__init__(
            f"shared class {type_name!r} has no shared method {method_name!r}"
        )
        self.type_name = type_name
        self.method_name = method_name


class NonBooleanResultError(OperationError):
    """A shared method returned something other than a bool.

    The GUESSTIMATE model requires every shared operation to report
    success or failure; the runtime enforces this at execution time.
    """

    def __init__(self, method_name: str, result: object):
        super().__init__(
            f"shared method {method_name!r} must return bool, got "
            f"{type(result).__name__}"
        )
        self.method_name = method_name
        self.result = result


class IssueBlockedError(OperationError):
    """An operation was issued inside a blocked window.

    The runtime forbids issuing operations during the flush window
    [tBeginFlush, tEndFlush] and the update window
    [tBeginUpdate, tEndUpdate] (paper section 4).  Callers that cannot
    block should use ``Guesstimate.issue_when_possible`` which defers
    the issue until the window closes.
    """

    def __init__(self, window: str):
        super().__init__(f"operations cannot be issued during the {window} window")
        self.window = window


class ReadIsolationError(GuesstimateError):
    """Misuse of the BeginRead/EndRead protocol."""


# ---------------------------------------------------------------------------
# Runtime / synchronizer errors
# ---------------------------------------------------------------------------


class RuntimeFailure(GuesstimateError):
    """Internal synchronizer failures (protocol violations, bad state)."""


class NotMasterError(RuntimeFailure):
    """A master-only action was attempted on a non-master node."""


class ProtocolError(RuntimeFailure):
    """A message arrived that is invalid for the current protocol stage."""


class MembershipError(RuntimeFailure):
    """Join/leave handling failed."""


class NodeCrashedError(RuntimeFailure):
    """An API call was made on a node that has crashed or been removed."""

    def __init__(self, machine_id: str):
        super().__init__(f"machine {machine_id!r} is not running")
        self.machine_id = machine_id


# ---------------------------------------------------------------------------
# Network substrate errors
# ---------------------------------------------------------------------------


class NetworkError(GuesstimateError):
    """Problems in the simulated or real-time transport."""


class NotInMeshError(NetworkError):
    """A node sent or received on a mesh it has not joined."""

    def __init__(self, node_id: str, mesh_name: str):
        super().__init__(f"node {node_id!r} is not a member of mesh {mesh_name!r}")
        self.node_id = node_id
        self.mesh_name = mesh_name


class SerializationError(NetworkError):
    """A value could not be encoded for transport (or decoded back)."""


class TransportError(NetworkError):
    """Problems in the real socket transport (repro.transport)."""


class FrameError(TransportError):
    """A length-prefixed wire frame is malformed or oversized."""


class ClusterConfigError(TransportError):
    """A cluster.yaml deployment description is invalid or incomplete."""


class GatewayError(TransportError):
    """Problems in the HTTP/WebSocket service gateway (repro.gateway)."""


# ---------------------------------------------------------------------------
# Durability / storage errors
# ---------------------------------------------------------------------------


class StorageError(GuesstimateError):
    """Problems in the durability subsystem (WAL, snapshots, recovery)."""


class WalCorruptionError(StorageError):
    """The write-ahead log holds damage that cannot be safely dropped.

    Damage limited to the final records of the log (a torn append, a
    bit-flipped tail) is recovered from silently by truncation; this
    error means an *earlier* record is unreadable, i.e. committed
    history has been lost.
    """


# ---------------------------------------------------------------------------
# Simulation-kernel errors
# ---------------------------------------------------------------------------


class SimulationError(GuesstimateError):
    """Misuse of the discrete-event simulation kernel."""


class ClockMonotonicityError(SimulationError):
    """An event was scheduled in the past."""

    def __init__(self, now: float, when: float):
        super().__init__(f"cannot schedule at t={when} before now t={now}")
        self.now = now
        self.when = when


# ---------------------------------------------------------------------------
# Specification / verification errors
# ---------------------------------------------------------------------------


class SpecError(GuesstimateError):
    """Problems declaring or checking specifications."""


class ContractViolation(SpecError):
    """A runtime-checked contract failed during execution."""

    def __init__(self, kind: str, description: str, subject: str):
        super().__init__(f"{kind} violated on {subject}: {description}")
        self.kind = kind
        self.description = description
        self.subject = subject


class ConformanceError(SpecError):
    """A shared operation does not conform to its specification."""


# ---------------------------------------------------------------------------
# Evaluation-kit errors
# ---------------------------------------------------------------------------


class ExperimentError(GuesstimateError):
    """An experiment configuration is invalid or a run failed."""
