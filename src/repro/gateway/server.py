"""The gateway server: REST routes + WebSocket delta stream.

Attached by the daemon to the same asyncio loop the node runs on, so
every handler executes on the loop thread — the same single-threaded
discipline the rest of the runtime relies on; no locks anywhere.

REST surface (all JSON)::

    GET  /healthz               liveness + node state
    GET  /cluster               node id, role, membership, commit position
    GET  /objects               ids of every visible shared object
    GET  /objects/{id}          type, state and version of one object
    POST /instances             {"type": T, "state": {...}} -> {"id": ...}
    POST /instances/{id}/join   subscribe this node to an object
    POST /operations            {"object", "method", "args"} -> {"ticket"}
    GET  /tickets/{tid}         ticket status: pending/guessed/committed/rejected

Ticket statuses map the :class:`~repro.core.guesstimate.IssueTicket`
lifecycle; ``issued`` is surfaced as ``guessed`` — the operation has
executed on the guesstimated state and awaits global commitment, the
paper's defining intermediate state.

``GET /ws`` upgrades to a WebSocket that streams:

* ``{"event": "delta", "object", "version", "type", "state"}`` whenever
  a shared object's guesstimated state changes version (the PR 4
  versioned-store stamps make change detection O(objects) per poll);
* ``{"event": "removed", "object"}`` when an object disappears;
* ``{"event": "ticket", "ticket", "status", "commit_result"}`` when an
  operation issued through this gateway commits or is rejected.
"""

from __future__ import annotations

import asyncio
import json

from repro.core.serialization import encode_state, resolve_shared_type
from repro.errors import (
    GatewayError,
    GuesstimateError,
    SerializationError,
    SharedObjectError,
    UnknownMethodError,
)
from repro.gateway.http import (
    WS_CLOSE,
    WS_PING,
    WS_PONG,
    HttpRequest,
    json_response,
    read_request,
    ws_frame,
    ws_handshake_response,
    ws_read_frame,
    ws_text_frame,
)
from repro.runtime.node import GuesstimateNode

_STATUS_MAP = {
    "pending": "pending",
    "issued": "guessed",
    "committed": "committed",
    "rejected": "rejected",
}


def _json_object(request: HttpRequest) -> dict:
    """The request body as a JSON *object* (a list or scalar is a
    client error, not a reason to drop the connection)."""
    body = request.json()
    if not isinstance(body, dict):
        raise GatewayError("request body must be a JSON object")
    return body


def _encode_ws_event(event: dict) -> bytes:
    """Serialize one event to a ready-to-write WebSocket text frame.

    Fan-out paths call this once per event and enqueue the same bytes
    to every subscriber, instead of re-running ``json.dumps`` + frame
    assembly per connection.
    """
    return ws_text_frame(json.dumps(event, sort_keys=True))


class _Subscriber:
    """One WebSocket client: an outbound queue + per-object versions."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        #: queue of pre-encoded frames (bytes) or raw event dicts
        self.queue: asyncio.Queue = asyncio.Queue()
        self.seen: dict[str, int] = {}  # object id -> last pushed version
        self.closed = False

    def push(self, event: dict | bytes) -> None:
        if not self.closed:
            self.queue.put_nowait(event)


class GatewayServer:
    """HTTP/WebSocket facade over one node's Guesstimate API."""

    def __init__(
        self,
        node: GuesstimateNode,
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval: float = 0.05,
    ):
        self.node = node
        self.host = host
        self.port = port  # updated to the bound port by start()
        self.poll_interval = poll_interval
        self.tickets: dict[str, object] = {}
        self._ticket_counter = 0
        self.subscribers: list[_Subscriber] = []
        self._server: asyncio.base_events.Server | None = None
        self._pump_task: asyncio.Task | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._pump_task = asyncio.get_running_loop().create_task(self._delta_pump())
        return self.host, self.port

    async def stop(self) -> None:
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError:
                pass
            self._pump_task = None
        for subscriber in list(self.subscribers):
            subscriber.closed = True
            subscriber.writer.close()
        self.subscribers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await read_request(reader)
            if request is None:
                return
            if request.path == "/ws" and "websocket" in request.headers.get(
                "upgrade", ""
            ).lower():
                await self._serve_websocket(request, reader, writer)
                return
            status, payload = self._route(request)
            writer.write(json_response(status, payload))
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
            except OSError:  # pragma: no cover - already torn down
                pass

    def _route(self, request: HttpRequest) -> tuple[int, dict]:
        try:
            return self._dispatch(request)
        except SharedObjectError as exc:
            return 404, {"error": str(exc)}
        except (GatewayError, SerializationError, UnknownMethodError) as exc:
            return 400, {"error": str(exc)}
        except GuesstimateError as exc:
            return 500, {"error": str(exc)}
        except (TypeError, ValueError) as exc:
            # A client-shaped failure from inside an operation — e.g. a
            # stale-spec client invoking with the wrong arity or wrong
            # argument types.  The op raised before it was enqueued, so
            # nothing reached the protocol; the client just loses.
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except Exception as exc:  # noqa: BLE001 - the gateway must answer
            # Whatever happened, a hostile request must never take the
            # daemon's connection handler down without a response.
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _dispatch(self, request: HttpRequest) -> tuple[int, dict]:
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]

        if method == "GET" and path == "/healthz":
            return 200, {
                "ok": True,
                "node": self.node.machine_id,
                "state": self.node.state,
            }
        if method == "GET" and path == "/cluster":
            return 200, self._cluster_info()
        if method == "GET" and path == "/objects":
            return 200, {"objects": self.node.api.available_objects()}
        if method == "GET" and len(parts) == 2 and parts[0] == "objects":
            return 200, self._object_info(parts[1])
        if method == "POST" and path == "/instances":
            return self._create_instance(_json_object(request))
        if (
            method == "POST"
            and len(parts) == 3
            and parts[0] == "instances"
            and parts[2] == "join"
        ):
            obj = self.node.api.join_instance(parts[1])
            return 200, {"id": parts[1], "type": type(obj).__name__}
        if method == "POST" and path == "/operations":
            return self._issue_operation(_json_object(request))
        if method == "GET" and len(parts) == 2 and parts[0] == "tickets":
            return self._ticket_info(parts[1])
        return 404, {"error": f"no route for {method} {path}"}

    # -- route implementations -----------------------------------------------

    def _cluster_info(self) -> dict:
        node = self.node
        master = node.master
        participants = (
            list(master.participants)  # already includes the master itself
            if master is not None
            else list(node.synchronizer.last_order)
        )
        return {
            "node": node.machine_id,
            "state": node.state,
            "is_master": node.is_master,
            "participants": participants,
            "committed": node.completed_offset + node.model.completed_count,
        }

    def _object_info(self, unique_id: str) -> dict:
        store = self.node.model.guess
        if not store.has(unique_id):
            store = self.node.model.committed
        if not store.has(unique_id):
            from repro.errors import UnknownObjectError

            raise UnknownObjectError(unique_id)
        encoded = encode_state(store.get(unique_id))
        return {
            "id": unique_id,
            "type": encoded["type"],
            "state": encoded["state"],
            "version": store.version(unique_id),
        }

    def _create_instance(self, body: dict) -> tuple[int, dict]:
        type_name = body.get("type")
        if not isinstance(type_name, str):
            raise GatewayError("POST /instances needs a string 'type' field")
        cls = resolve_shared_type(type_name)
        init_state = body.get("state")
        obj = self.node.api.create_instance(cls, init_state)
        return 200, {"id": obj.unique_id, "type": type_name}

    def _issue_operation(self, body: dict) -> tuple[int, dict]:
        unique_id = body.get("object")
        method_name = body.get("method")
        if not isinstance(unique_id, str) or not isinstance(method_name, str):
            raise GatewayError(
                "POST /operations needs string 'object' and 'method' fields"
            )
        args = body.get("args", [])
        if not isinstance(args, list):
            raise GatewayError("'args' must be a JSON array")
        self._ticket_counter += 1
        ticket_id = f"t{self._ticket_counter}"

        def completion(result: bool) -> None:
            self._broadcast_event(
                {
                    "event": "ticket",
                    "ticket": ticket_id,
                    "status": "committed",
                    "commit_result": result,
                }
            )

        ticket = self.node.api.invoke(
            unique_id, method_name, *args, completion=completion
        )
        self.tickets[ticket_id] = ticket
        if ticket.status == "rejected":
            self._broadcast_event(
                {
                    "event": "ticket",
                    "ticket": ticket_id,
                    "status": "rejected",
                    "commit_result": False,
                }
            )
        return 200, {"ticket": ticket_id, "status": _STATUS_MAP[ticket.status]}

    def _ticket_info(self, ticket_id: str) -> tuple[int, dict]:
        ticket = self.tickets.get(ticket_id)
        if ticket is None:
            return 404, {"error": f"unknown ticket {ticket_id!r}"}
        return 200, {
            "ticket": ticket_id,
            "status": _STATUS_MAP[ticket.status],
            "commit_result": ticket.commit_result,
            "key": str(ticket.key) if ticket.key is not None else None,
        }

    # -- WebSocket delta stream ----------------------------------------------

    async def _serve_websocket(
        self,
        request: HttpRequest,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = request.headers.get("sec-websocket-key")
        if key is None:
            writer.write(json_response(400, {"error": "missing websocket key"}))
            await writer.drain()
            return
        writer.write(ws_handshake_response(key))
        await writer.drain()
        subscriber = _Subscriber(writer)
        self.subscribers.append(subscriber)
        sender = asyncio.get_running_loop().create_task(self._ws_sender(subscriber))
        try:
            while True:
                frame = await ws_read_frame(reader)
                if frame is None or frame[0] == WS_CLOSE:
                    break
                if frame[0] == WS_PING:
                    writer.write(ws_frame(WS_PONG, frame[1]))
                    await writer.drain()
        finally:
            subscriber.closed = True
            if subscriber in self.subscribers:
                self.subscribers.remove(subscriber)
            sender.cancel()
            try:
                await sender
            except asyncio.CancelledError:
                pass

    async def _ws_sender(self, subscriber: _Subscriber) -> None:
        while not subscriber.closed:
            event = await subscriber.queue.get()
            data = (
                event
                if isinstance(event, (bytes, bytearray))
                else _encode_ws_event(event)
            )
            try:
                subscriber.writer.write(data)
                await subscriber.writer.drain()
            except (ConnectionError, OSError):
                subscriber.closed = True
                return

    def _broadcast_event(self, event: dict) -> None:
        if not self.subscribers:
            return
        data = _encode_ws_event(event)
        for subscriber in self.subscribers:
            subscriber.push(data)

    async def _delta_pump(self) -> None:
        """Push guess-store changes to every subscriber.

        Polls the versioned store's stamps (cheap integer compares; the
        expensive ``encode_state`` runs only for objects that actually
        changed).  ``self.node.model`` is re-read every scan so the pump
        survives node restarts, which replace the model wholesale.
        """
        while True:
            await asyncio.sleep(self.poll_interval)
            if not self.subscribers:
                continue
            store = self.node.model.guess
            current_ids = set(store.ids())
            # One scan encodes each changed object once — state encode,
            # JSON render and WS framing are all shared; subscribers
            # differ only in *which* cached frames they are behind on.
            frame_cache: dict[tuple[str, int], bytes] = {}
            removed_cache: dict[str, bytes] = {}
            for subscriber in list(self.subscribers):
                for unique_id in sorted(current_ids):
                    version = store.version(unique_id)
                    if subscriber.seen.get(unique_id) == version:
                        continue
                    data = frame_cache.get((unique_id, version))
                    if data is None:
                        encoded = encode_state(store.get(unique_id))
                        data = _encode_ws_event(
                            {
                                "event": "delta",
                                "object": unique_id,
                                "version": version,
                                "type": encoded["type"],
                                "state": encoded["state"],
                            }
                        )
                        frame_cache[(unique_id, version)] = data
                    subscriber.seen[unique_id] = version
                    subscriber.push(data)
                for gone in [u for u in subscriber.seen if u not in current_ids]:
                    del subscriber.seen[gone]
                    data = removed_cache.get(gone)
                    if data is None:
                        data = _encode_ws_event({"event": "removed", "object": gone})
                        removed_cache[gone] = data
                    subscriber.push(data)
