"""Minimal HTTP/1.1 + WebSocket (RFC 6455) plumbing for the gateway.

Deliberately tiny: one request per connection (``Connection: close``)
for the REST routes, plus just enough WebSocket framing for the delta
stream — text frames server→client, masked client frames, ping/pong,
close.  No fragmentation, no extensions, no compression; the gateway's
messages are small JSON documents.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, urlsplit

from repro.errors import GatewayError

MAX_REQUEST_BODY = 4 * 1024 * 1024
MAX_HEADER_BYTES = 64 * 1024
#: Largest client→server WebSocket payload we will buffer.  Clients only
#: ever send pings and close frames; a declared length beyond this is a
#: hostile frame and drops the connection instead of waiting on (or
#: allocating) gigabytes.
MAX_WS_PAYLOAD = 1024 * 1024

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"

WS_TEXT = 0x1
WS_CLOSE = 0x8
WS_PING = 0x9
WS_PONG = 0xA


@dataclass
class HttpRequest:
    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        if not self.body:
            return {}
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise GatewayError(f"request body is not valid JSON: {exc}") from None


async def read_request(reader: asyncio.StreamReader) -> HttpRequest | None:
    """Parse one HTTP/1.1 request; None on EOF or malformed preamble."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    except asyncio.LimitOverrunError:
        return None
    if len(head) > MAX_HEADER_BYTES:
        return None
    try:
        lines = head.decode("latin-1").split("\r\n")
        method, target, _version = lines[0].split(" ", 2)
    except (UnicodeDecodeError, ValueError):
        return None
    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    parts = urlsplit(target)
    body = b""
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        return None
    if length < 0 or length > MAX_REQUEST_BODY:
        return None
    if length:
        try:
            body = await reader.readexactly(length)
        except (asyncio.IncompleteReadError, ConnectionError):
            return None
    return HttpRequest(
        method=method.upper(),
        path=parts.path,
        query=dict(parse_qsl(parts.query)),
        headers=headers,
        body=body,
    )


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
}


def json_response(status: int, payload) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


# ---------------------------------------------------------------------------
# WebSocket framing
# ---------------------------------------------------------------------------


def ws_accept_value(key: str) -> str:
    """The Sec-WebSocket-Accept value for a client's handshake key."""
    digest = hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
    return base64.b64encode(digest).decode("latin-1")


def ws_handshake_response(key: str) -> bytes:
    return (
        "HTTP/1.1 101 Switching Protocols\r\n"
        "Upgrade: websocket\r\n"
        "Connection: Upgrade\r\n"
        f"Sec-WebSocket-Accept: {ws_accept_value(key)}\r\n"
        "\r\n"
    ).encode("latin-1")


def ws_frame(opcode: int, payload: bytes, mask: bool = False) -> bytes:
    """Build one unfragmented frame (server frames are unmasked)."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    mask_bit = 0x80 if mask else 0x00
    if length < 126:
        header.append(mask_bit | length)
    elif length < 1 << 16:
        header.append(mask_bit | 126)
        header += struct.pack(">H", length)
    else:
        header.append(mask_bit | 127)
        header += struct.pack(">Q", length)
    if mask:
        # Fixed masking key: the mask exists for proxy-cache hygiene,
        # not secrecy, and a deterministic key keeps tests replayable.
        key = b"\x37\xfa\x21\x3d"
        header += key
        payload = bytes(b ^ key[i % 4] for i, b in enumerate(payload))
    return bytes(header) + payload


def ws_text_frame(text: str, mask: bool = False) -> bytes:
    return ws_frame(WS_TEXT, text.encode("utf-8"), mask=mask)


def ws_close_frame() -> bytes:
    return ws_frame(WS_CLOSE, b"")


async def ws_read_frame(
    reader: asyncio.StreamReader,
) -> tuple[int, bytes] | None:
    """Read one frame; returns (opcode, payload) or None on EOF/close."""
    try:
        first = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    try:
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > MAX_WS_PAYLOAD:
            return None
        mask_key = await reader.readexactly(4) if masked else b""
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    if masked:
        payload = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
    return opcode, payload
