"""HTTP/WebSocket service gateway over one GUESSTIMATE node.

External clients — anything that can speak HTTP — create and join
shared instances, issue operations (receiving ticket ids that track
the guess-then-commit lifecycle), poll ticket state, and stream
guess-update deltas over a WebSocket.  Everything is stdlib asyncio;
the gateway adds no dependency the daemon does not already have.

Layers:

* :mod:`repro.gateway.http` — minimal HTTP/1.1 request parsing, JSON
  responses, and RFC 6455 WebSocket framing.
* :mod:`repro.gateway.server` — :class:`GatewayServer`, the routes and
  the delta pump, attached to a node's event loop by the daemon.
* :mod:`repro.gateway.client` — a small blocking client (urllib + raw
  socket WebSocket) for tests, examples and shell scripting.
"""

from repro.gateway.server import GatewayServer

__all__ = ["GatewayServer"]
