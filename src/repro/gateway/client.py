"""A small blocking gateway client (urllib + raw-socket WebSocket).

For tests, the cluster quickstart and shell scripting — subprocess
daemons are driven from ordinary synchronous code, so the client is
deliberately not asyncio.  Production clients can use any HTTP or
WebSocket library; the wire surface is plain JSON over HTTP/1.1.
"""

from __future__ import annotations

import base64
import json
import socket
import struct
import time
import urllib.error
import urllib.request

from repro.errors import GatewayError
from repro.gateway.http import ws_frame, WS_CLOSE, WS_PING, WS_PONG, WS_TEXT


class GatewayClient:
    """Blocking REST client for one gateway endpoint."""

    def __init__(self, base_url: str, timeout: float = 5.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode("utf-8") if body is not None else None
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 - best-effort error detail
                detail = ""
            raise GatewayError(
                f"{method} {path} failed with HTTP {exc.code}: {detail}"
            ) from None
        except (urllib.error.URLError, TimeoutError, OSError) as exc:
            raise GatewayError(f"{method} {path} unreachable: {exc}") from None

    # -- REST surface --------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def cluster(self) -> dict:
        return self._request("GET", "/cluster")

    def objects(self) -> list[str]:
        return self._request("GET", "/objects")["objects"]

    def object(self, unique_id: str) -> dict:
        return self._request("GET", f"/objects/{unique_id}")

    def create_instance(self, type_name: str, state: dict | None = None) -> str:
        body: dict = {"type": type_name}
        if state is not None:
            body["state"] = state
        return self._request("POST", "/instances", body)["id"]

    def join_instance(self, unique_id: str) -> dict:
        return self._request("POST", f"/instances/{unique_id}/join", {})

    def invoke(self, unique_id: str, method: str, *args) -> dict:
        return self._request(
            "POST",
            "/operations",
            {"object": unique_id, "method": method, "args": list(args)},
        )

    def ticket(self, ticket_id: str) -> dict:
        return self._request("GET", f"/tickets/{ticket_id}")

    def wait_ticket(
        self, ticket_id: str, timeout: float = 10.0, poll: float = 0.05
    ) -> dict:
        """Poll until the ticket leaves pending/guessed; returns its info."""
        deadline = time.monotonic() + timeout
        while True:
            info = self.ticket(ticket_id)
            if info["status"] in ("committed", "rejected"):
                return info
            if time.monotonic() >= deadline:
                raise GatewayError(
                    f"ticket {ticket_id} still {info['status']!r} after {timeout}s"
                )
            time.sleep(poll)

    def connect_ws(self, timeout: float = 5.0) -> "GatewayWebSocket":
        """Open the delta-stream WebSocket."""
        host, _, port_text = self.base_url.split("//", 1)[1].partition(":")
        return GatewayWebSocket(host, int(port_text), timeout=timeout)


class GatewayWebSocket:
    """Client side of the gateway's ``/ws`` delta stream."""

    def __init__(self, host: str, port: int, timeout: float = 5.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        key = base64.b64encode(b"repro-gateway-ws").decode("latin-1")
        handshake = (
            "GET /ws HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            "Upgrade: websocket\r\n"
            "Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            "Sec-WebSocket-Version: 13\r\n"
            "\r\n"
        ).encode("latin-1")
        self.sock.sendall(handshake)
        response = self._read_until(b"\r\n\r\n")
        if b"101" not in response.split(b"\r\n", 1)[0]:
            raise GatewayError(f"websocket handshake refused: {response[:120]!r}")

    def _read_until(self, marker: bytes) -> bytes:
        data = b""
        while marker not in data:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise GatewayError("connection closed during websocket handshake")
            data += chunk
        return data

    def _read_exactly(self, count: int) -> bytes:
        data = b""
        while len(data) < count:
            chunk = self.sock.recv(count - len(data))
            if not chunk:
                raise GatewayError("websocket connection closed mid-frame")
            data += chunk
        return data

    def recv_json(self, timeout: float = 5.0) -> dict:
        """Receive the next text frame as JSON (transparently pongs pings)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise GatewayError("timed out waiting for a websocket frame")
            self.sock.settimeout(remaining)
            try:
                head = self._read_exactly(2)
            except socket.timeout:
                raise GatewayError("timed out waiting for a websocket frame") from None
            opcode = head[0] & 0x0F
            length = head[1] & 0x7F
            if length == 126:
                (length,) = struct.unpack(">H", self._read_exactly(2))
            elif length == 127:
                (length,) = struct.unpack(">Q", self._read_exactly(8))
            payload = self._read_exactly(length) if length else b""
            if opcode == WS_TEXT:
                return json.loads(payload.decode("utf-8"))
            if opcode == WS_PING:
                self.sock.sendall(ws_frame(WS_PONG, payload, mask=True))
                continue
            if opcode == WS_CLOSE:
                raise GatewayError("websocket closed by the gateway")
            # Ignore pongs and anything else.

    def close(self) -> None:
        try:
            self.sock.sendall(ws_frame(WS_CLOSE, b"", mask=True))
        except OSError:
            pass
        self.sock.close()
