"""Small statistics toolbox for the experiments.

Deliberately dependency-light (plain Python, no numpy) so the exact
arithmetic feeding the reported numbers is visible in one screen of
code.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def percentile(values: list[float], q: float) -> float:
    """The q-th percentile (0..100), linear interpolation."""
    if not values:
        raise ValueError("percentile of empty sequence")
    if not 0 <= q <= 100:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = (len(ordered) - 1) * q / 100.0
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def mean_excluding(values: list[float], threshold: float) -> float:
    """Mean of values <= threshold.

    This is the paper's Figure 6 averaging rule: "the average
    synchronization time is measured by ignoring the outliers
    (time > 12 seconds), as including them would skew the average away
    from the median."
    """
    kept = [value for value in values if value <= threshold]
    if not kept:
        raise ValueError("all values excluded")
    return sum(kept) / len(kept)


def linear_fit(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares fit y = slope * x + intercept."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two equal-length series of length >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    covariance = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    variance = sum((x - mean_x) ** 2 for x in xs)
    if variance == 0:
        raise ValueError("x values are constant")
    slope = covariance / variance
    return slope, mean_y - slope * mean_x


@dataclass
class Histogram:
    """Fixed-bucket histogram with an overflow bucket.

    ``edges`` are the right edges of the buckets; values greater than
    the last edge fall into the overflow bucket.  Exactly what Figure 5
    plots: a distribution of sync times with a ">12 s" tail.
    """

    edges: list[float]
    counts: list[int] = field(default_factory=list)
    overflow: int = 0
    total: int = 0

    def __post_init__(self):
        if sorted(self.edges) != self.edges or not self.edges:
            raise ValueError("edges must be non-empty and ascending")
        if not self.counts:
            self.counts = [0] * len(self.edges)

    def add(self, value: float) -> None:
        self.total += 1
        for index, edge in enumerate(self.edges):
            if value <= edge:
                self.counts[index] += 1
                return
        self.overflow += 1

    def add_all(self, values: list[float]) -> None:
        for value in values:
            self.add(value)

    def fraction_below(self, edge: float) -> float:
        """Fraction of samples at or below ``edge`` (must be an edge)."""
        if self.total == 0:
            return 0.0
        covered = 0
        for index, e in enumerate(self.edges):
            if e <= edge + 1e-12:
                covered += self.counts[index]
        return covered / self.total

    def rows(self) -> list[tuple[str, int]]:
        """(label, count) rows including the overflow bucket."""
        rows: list[tuple[str, int]] = []
        previous = 0.0
        for edge, count in zip(self.edges, self.counts):
            rows.append((f"({previous:g}, {edge:g}]", count))
            previous = edge
        rows.append((f"> {self.edges[-1]:g}", self.overflow))
        return rows

    def format(self, width: int = 50) -> str:
        """ASCII bar rendering (the Figure 5 stand-in)."""
        peak = max(max(self.counts, default=1), self.overflow, 1)
        lines = []
        for label, count in self.rows():
            bar = "#" * max(0, round(width * count / peak))
            lines.append(f"  {label:>14} | {count:6d} {bar}")
        return "\n".join(lines)
