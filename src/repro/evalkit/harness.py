"""Common experiment harness: build a system, run a Sudoku session.

Every figure experiment is a thin layer over :func:`run_sudoku_session`
with different user counts, durations, activity models and fault
schedules — the same way every number in the paper's section 7 comes
from the same instrumented Sudoku deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.net.faults import FaultInjector
from repro.net.latency import LatencyModel, lan_profile
from repro.runtime.config import RuntimeConfig
from repro.runtime.system import DistributedSystem
from repro.spec.contracts import set_checking
from repro.workloads.activity import ActivityModel
from repro.workloads.drivers import SessionStats, SudokuSession


@dataclass
class SessionConfig:
    """Everything a measured Sudoku session needs."""

    users: int = 8
    duration: float = 3600.0  # simulated seconds (the paper ran ~1 h)
    seed: int = 0
    n_grids: int = 2
    activity: ActivityModel = field(default_factory=ActivityModel)
    latency: LatencyModel | None = None
    faults: FaultInjector | None = None
    runtime: RuntimeConfig = field(default_factory=RuntimeConfig)
    #: contracts cost ~2x on hot paths; experiments turn them off like
    #: a release build (tests keep them on).
    contracts: bool = False


@dataclass
class SessionOutcome:
    """A finished session: the system (with metrics) plus driver stats."""

    system: DistributedSystem
    stats: SessionStats
    duration: float

    @property
    def sync_durations(self) -> list[float]:
        return self.system.metrics.sync_durations()

    @property
    def conflicts(self) -> int:
        return self.system.metrics.total_conflicts()


def build_system(config: SessionConfig) -> DistributedSystem:
    """A system wired per the config (latency defaults to the LAN profile)."""
    if config.users < 1:
        raise ExperimentError("need at least one user")
    return DistributedSystem(
        n_machines=config.users,
        seed=config.seed,
        latency=config.latency if config.latency is not None else lan_profile(),
        faults=config.faults,
        config=config.runtime,
    )


def run_sudoku_session(config: SessionConfig) -> SessionOutcome:
    """The measurement workhorse: N users playing for the duration.

    Returns after the session time elapses and the system quiesces, so
    every issued operation has committed and all invariants are
    checkable.
    """
    previous = set_checking(config.contracts)
    try:
        system = build_system(config)
        session = SudokuSession(
            system,
            n_grids=config.n_grids,
            activity=config.activity,
            seed=config.seed,
        )
        session.setup()
        session.start()
        system.run_for(config.duration)
        session.stop()
        system.run_until_quiesced(max_time=600.0)
        system.stop()
        return SessionOutcome(system, session.stats, config.duration)
    finally:
        set_checking(previous)
