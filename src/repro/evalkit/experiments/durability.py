"""Durability & crash recovery costs (WAL + snapshot subsystem).

The paper's recovery story (section 7) restarts a crashed machine from
the master's state snapshot — all local history is lost.  The storage
subsystem upgrades this: every committed round is write-ahead logged
before it is acknowledged, so a machine killed mid-run rebuilds
``sc`` and its completed sequence from ``snapshot + WAL replay`` and
rejoins with only the missed backlog.

This experiment measures what that costs and what bounds it:

* recovery replay length (and wall time) as a function of the number of
  committed rounds in the WAL — linear without snapshots;
* the same with periodic snapshots — replay is bounded by the snapshot
  interval regardless of history length;
* the write-side overhead (records, bytes, fsyncs) per fsync policy.

Runs on the in-memory backend by default (zero IO, simulator-exact);
pass a ``data_dir`` to measure real files and fsyncs.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from dataclasses import dataclass, field

from repro.core.serialization import shared_type
from repro.core.shared_object import GSharedObject
from repro.net.faults import ScheduledFaults
from repro.runtime.config import RuntimeConfig
from repro.runtime.system import DistributedSystem


@shared_type
class DurableCounter(GSharedObject):
    """Minimal conflict-free workload object for the recovery runs."""

    def __init__(self):
        self.value = 0

    def copy_from(self, src: "DurableCounter") -> None:
        self.value = src.value

    def increment(self, limit: int) -> bool:
        if self.value >= limit:
            return False
        self.value += 1
        return True


@dataclass
class DurabilityPoint:
    """One crash-recovery measurement."""

    committed_rounds: int
    snapshot_interval: int  # 0 = snapshots disabled
    replay_length: int
    recovery_seconds: float
    wal_records: int
    wal_bytes: int
    fsyncs: int
    snapshots_written: int
    converged: bool


@dataclass
class DurabilityResult:
    mode: str  # "memory" or "disk"
    fsync_policy: str
    points: list[DurabilityPoint] = field(default_factory=list)


def _run_point(
    committed_rounds: int,
    snapshot_interval: int,
    seed: int,
    mode: str,
    data_dir: str | None,
    fsync_policy: str,
) -> DurabilityPoint:
    config = RuntimeConfig(
        sync_interval=0.5,
        stall_timeout=2.0,
        durability=mode,
        data_dir=data_dir,
        fsync_policy=fsync_policy,
        snapshot_interval=snapshot_interval,
    )
    faults = ScheduledFaults()
    system = DistributedSystem(
        n_machines=3, seed=seed, faults=faults, config=config
    )
    system.start(first_sync_delay=0.1)

    api = system.api("m01")
    counter = api.create_instance(DurableCounter)
    system.run_until_quiesced()
    victim = system.node("m03")
    victim.api.join_instance(counter.unique_id)

    # One committed round per issued operation.
    for _ in range(committed_rounds):
        api.issue_operation(
            api.create_operation(counter, "increment", 10**9)
        )
        system.run_until_quiesced()

    victim.halt()
    victim.recover_and_rejoin()
    system.run_for(5.0)
    system.run_until_quiesced()

    stats = victim.metrics.storage
    converged = (
        victim.state == "active"
        and system.committed_states_equal()
        and system.completed_sequences_equal()
    )
    point = DurabilityPoint(
        committed_rounds=committed_rounds,
        snapshot_interval=snapshot_interval,
        replay_length=stats.last_replay_length,
        recovery_seconds=stats.last_recovery_seconds,
        wal_records=stats.records_appended,
        wal_bytes=stats.bytes_appended,
        fsyncs=stats.fsyncs,
        snapshots_written=stats.snapshots_written,
        converged=converged,
    )
    system.stop()
    return point


def run(
    wal_lengths: list[int] | None = None,
    snapshot_interval: int = 8,
    seed: int = 7,
    data_dir: str | None = None,
    fsync_policy: str = "interval",
) -> DurabilityResult:
    """Measure recovery cost at each WAL length, with and without
    snapshots.  ``data_dir`` switches from the in-memory backend to real
    files (a temporary directory is used per point and removed)."""
    if wal_lengths is None:
        wal_lengths = [8, 32, 128]
    mode = "disk" if data_dir is not None else "memory"
    if data_dir is not None:
        os.makedirs(data_dir, exist_ok=True)
    result = DurabilityResult(mode=mode, fsync_policy=fsync_policy)
    for length in wal_lengths:
        for interval in (0, snapshot_interval):
            point_dir = None
            if data_dir is not None:
                point_dir = tempfile.mkdtemp(
                    prefix=f"durability-{length}-{interval}-", dir=data_dir
                )
            try:
                result.points.append(
                    _run_point(
                        committed_rounds=length,
                        snapshot_interval=interval,
                        seed=seed,
                        mode=mode,
                        data_dir=point_dir,
                        fsync_policy=fsync_policy,
                    )
                )
            finally:
                if point_dir is not None:
                    shutil.rmtree(point_dir, ignore_errors=True)
    return result


def format_report(result: DurabilityResult) -> str:
    lines = [
        "Durability & crash recovery (WAL + snapshot subsystem)",
        f"  backend: {result.mode}, fsync policy: {result.fsync_policy}",
        "  rounds  snap-int  replay  recovery(ms)  wal-recs  wal-bytes  "
        "fsyncs  snaps  converged",
    ]
    for p in result.points:
        lines.append(
            f"  {p.committed_rounds:6d}  {p.snapshot_interval:8d}  "
            f"{p.replay_length:6d}  {p.recovery_seconds * 1000:12.3f}  "
            f"{p.wal_records:8d}  {p.wal_bytes:9d}  {p.fsyncs:6d}  "
            f"{p.snapshots_written:5d}  {p.converged}"
        )
    no_snap = [p for p in result.points if p.snapshot_interval == 0]
    with_snap = [p for p in result.points if p.snapshot_interval > 0]
    if len(no_snap) >= 2:
        lines.append(
            "  without snapshots, replay grows with the WAL: "
            + " -> ".join(str(p.replay_length) for p in no_snap)
        )
    if with_snap:
        bound = max(p.snapshot_interval for p in with_snap)
        worst = max(p.replay_length for p in with_snap)
        lines.append(
            f"  with snapshots every {bound} rounds, replay stays <= "
            f"{worst} regardless of history length"
        )
    return "\n".join(lines)
