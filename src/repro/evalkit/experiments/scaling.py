"""Scalability study: the serial wall and the section-9 fix.

The paper (sections 7 and 9): the serial first stage makes sync time
linear in users — fine to ~100 users for games, ~1000 for calmer
collaborative apps, a wall beyond that.  The proposed fix is to
parallelize AddUpdatesToMesh "so that the time taken depends only on
the number of operations and the network delay but not on the number
of users".

This experiment measures both protocols across user counts and
extrapolates each to the paper's 100- and 1000-user marks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evalkit.stats import linear_fit, mean_excluding
from repro.runtime.config import RuntimeConfig, SyncConfig
from repro.runtime.system import DistributedSystem


@dataclass
class ScalingResult:
    user_counts: list[int]
    serial_means: list[float] = field(default_factory=list)
    parallel_means: list[float] = field(default_factory=list)
    serial_slope: float = 0.0
    parallel_slope: float = 0.0
    serial_at_100: float = 0.0
    serial_at_1000: float = 0.0
    parallel_at_1000: float = 0.0


def _mean_sync(users: int, parallel: bool, duration: float, seed: int) -> float:
    # Pin the collection mode explicitly: this experiment *compares*
    # the two, so the ambient GUESSTIMATE_COLLECTION default must not
    # flip the serial arm.
    config = RuntimeConfig(
        sync_interval=1.0,
        sync=SyncConfig(collection="concurrent" if parallel else "sequential"),
    )
    system = DistributedSystem(n_machines=users, seed=seed, config=config)
    system.start(first_sync_delay=0.1)
    system.run_for(duration)
    system.stop()
    return mean_excluding(system.metrics.sync_durations(), 12.0)


def run(
    user_counts: list[int] | None = None,
    duration: float = 60.0,
    seed: int = 19,
) -> ScalingResult:
    counts = user_counts if user_counts is not None else [2, 4, 8, 16, 32]
    result = ScalingResult(user_counts=counts)
    for users in counts:
        result.serial_means.append(_mean_sync(users, False, duration, seed))
        result.parallel_means.append(_mean_sync(users, True, duration, seed))
    xs = [float(c) for c in counts]
    result.serial_slope, serial_intercept = linear_fit(xs, result.serial_means)
    result.parallel_slope, parallel_intercept = linear_fit(
        xs, result.parallel_means
    )
    result.serial_at_100 = result.serial_slope * 100 + serial_intercept
    result.serial_at_1000 = result.serial_slope * 1000 + serial_intercept
    result.parallel_at_1000 = result.parallel_slope * 1000 + parallel_intercept
    return result


def format_report(result: ScalingResult) -> str:
    lines = [
        "Scalability — serial first stage (paper) vs parallel (section 9)",
        f"  {'users':>5} | {'serial (ms)':>11} | {'parallel (ms)':>13}",
        "  " + "-" * 37,
    ]
    for users, serial, parallel in zip(
        result.user_counts, result.serial_means, result.parallel_means
    ):
        lines.append(
            f"  {users:>5} | {serial * 1000:>11.1f} | {parallel * 1000:>13.1f}"
        )
    lines += [
        "",
        f"  serial slope {result.serial_slope * 1000:.1f} ms/user; "
        f"parallel slope {result.parallel_slope * 1000:.2f} ms/user",
        f"  serial extrapolations: {result.serial_at_100:.2f} s @100 users "
        "(paper: 'within 3 seconds'), "
        f"{result.serial_at_1000:.1f} s @1000 users (the wall of section 9)",
        f"  parallel @1000 users: {result.parallel_at_1000:.2f} s — "
        "'depends only on the number of operations and the network delay'",
    ]
    return "\n".join(lines)
