"""Phase-attributed round profiler (``BENCH_phases.json``).

Where does a commit round's *wall* time go?  The simulator's virtual
clock answers protocol questions (hops, CPU model, latency); this
experiment answers the complementary implementation question: of the
Python work actually executed per round, how much is **encode**
(codec + framing), **transport** (fan-out scheduling), **apply**
(decode + execute against the committed store), and **refresh** (guess
rebuild)?

It attaches one :class:`~repro.runtime.profiling.PhaseProfiler` to
every node of a concurrent-mode cluster via
:meth:`DistributedSystem.attach_profiler
<repro.runtime.system.DistributedSystem.attach_profiler>`, drives the
same increment workload ``syncscale`` uses, and reports per-phase
seconds / call counts / mean span cost.  A set of standalone
microbenchmarks sizes the individual hot-path pieces the flattening
work targets: one ``encode_wire``/``decode_wire`` round trip, and a
frame fan-out with and without the encode-once payload path.

The output feeds the CI phase gate::

    python -m repro.cli roundprof --quick      # print the breakdown
    python -m repro.cli roundprof              # + write BENCH_phases.json
    python -m repro.evalkit.phasegate          # compare to phase-budgets.json

``docs/PROFILING.md`` explains how to read and re-baseline the numbers.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from time import perf_counter

from repro.evalkit.experiments.durability import DurableCounter
from repro.runtime import messages as msg
from repro.runtime.config import RuntimeConfig, SyncConfig
from repro.runtime.profiling import PHASES, PhaseProfiler
from repro.runtime.system import DistributedSystem
from repro.storage.codec import decode_wire, encode_wire
from repro.transport.framing import (
    WireFrame,
    encode_frame,
    encode_frame_with_payload,
    encode_payload,
)


@dataclass
class RoundProfResult:
    machines: int
    duration: float
    rounds: int = 0
    ops_committed: int = 0
    #: phase -> {"seconds": .., "calls": .., "mean_us": ..}
    phases: dict[str, dict[str, float]] = field(default_factory=dict)
    #: microbenchmark name -> mean microseconds per call
    micro: dict[str, float] = field(default_factory=dict)

    def share(self, phase: str) -> float:
        total = sum(p["seconds"] for p in self.phases.values())
        if total <= 0.0:
            return 0.0
        return self.phases[phase]["seconds"] / total


def _profiled_run(
    machines: int, duration: float, seed: int, ops_per_tick: int
) -> tuple[PhaseProfiler, int, int]:
    """Drive the syncscale increment workload with a live profiler."""
    config = RuntimeConfig(
        sync_interval=0.5,
        sync=SyncConfig(
            collection="concurrent",
            batch_max_ops=64,
            pipeline_depth=2,
            scheduled_rounds=True,
            speculative_apply=True,
            compact_flush=True,
        ),
    )
    system = DistributedSystem(n_machines=machines, seed=seed, config=config)
    profiler = system.attach_profiler(PhaseProfiler())
    system.start(first_sync_delay=0.1)
    counter = system.apis()[0].create_instance(DurableCounter)
    system.run_until_quiesced()
    replicas = {
        machine_id: system.api(machine_id).join_instance(counter.unique_id)
        for machine_id in system.machine_ids()
    }
    interval = system.config.sync_interval / 3.0

    def tick(machine_id: str) -> None:
        api = system.api(machine_id)
        for _ in range(ops_per_tick):
            api.invoke(replicas[machine_id], "increment", 10**9)
        if system.loop.now() < deadline:
            system.loop.call_later(interval, lambda: tick(machine_id))

    deadline = system.loop.now() + duration
    for index, machine_id in enumerate(system.machine_ids()):
        system.loop.call_later(0.01 * index, lambda m=machine_id: tick(m))
    system.run_for(duration)
    system.run_until_quiesced()
    system.stop()
    system.check_all_invariants()
    metrics = system.metrics
    rounds = len(metrics.sync_records)
    ops = sum(r.ops_committed for r in metrics.sync_records)
    return profiler, rounds, ops


def _mean_us(work, repeats: int) -> float:
    """Mean wall microseconds of ``work()`` over ``repeats`` calls."""
    work()  # warm caches (field tuples, memoized encoders) first
    started = perf_counter()
    for _ in range(repeats):
        work()
    return (perf_counter() - started) / repeats * 1e6


def _microbench(repeats: int) -> dict[str, float]:
    """Size the individual hot-path pieces outside the simulator."""
    ops = tuple(
        (
            number,
            {
                "kind": "primitive",
                "object": f"counter-{number % 4:02d}",
                "method": "increment",
                "args": [10**9],
            },
        )
        for number in range(32)
    )
    batch = msg.OpBatch(7, "m03", 0, 1, ops)
    wire = encode_wire(batch)
    frame = WireFrame("ops", "m03", "m07", 41, 12.25, batch)
    peers = [f"m{i:02d}" for i in range(1, 17)]

    def fanout_naive() -> None:
        for peer in peers:
            encode_frame(
                WireFrame("ops", "m03", peer, 41, 12.25, batch)
            )

    def fanout_encode_once() -> None:
        payload_json = encode_payload(batch)
        for peer in peers:
            encode_frame_with_payload("ops", "m03", peer, 41, 12.25, payload_json)

    micro = {
        "encode_wire_us": _mean_us(lambda: encode_wire(batch), repeats),
        "decode_wire_us": _mean_us(lambda: decode_wire(wire), repeats),
        "encode_frame_us": _mean_us(lambda: encode_frame(frame), repeats),
        "fanout_naive_us": _mean_us(fanout_naive, max(1, repeats // 16)),
        "fanout_encode_once_us": _mean_us(fanout_encode_once, max(1, repeats // 16)),
    }
    micro["fanout_peers"] = float(len(peers))
    if micro["fanout_encode_once_us"] > 0.0:
        micro["fanout_speedup"] = round(
            micro["fanout_naive_us"] / micro["fanout_encode_once_us"], 3
        )
    return micro


def run(
    machines: int = 8,
    duration: float = 20.0,
    seed: int = 31,
    ops_per_tick: int = 2,
    micro_repeats: int = 2000,
) -> RoundProfResult:
    profiler, rounds, ops = _profiled_run(machines, duration, seed, ops_per_tick)
    result = RoundProfResult(machines=machines, duration=duration)
    result.rounds = rounds
    result.ops_committed = ops
    result.phases = profiler.snapshot()
    result.micro = _microbench(micro_repeats)
    return result


def to_bench_json(result: RoundProfResult) -> dict:
    """The ``BENCH_phases.json`` payload (stable schema for the gate)."""
    return {
        "benchmark": "roundprof",
        "config": {
            "machines": result.machines,
            "duration_s": result.duration,
        },
        "rounds": result.rounds,
        "ops_committed": result.ops_committed,
        "phases": {
            phase: {
                "seconds": round(stats["seconds"], 6),
                "calls": int(stats["calls"]),
                "mean_us": round(stats["mean_us"], 3),
            }
            for phase, stats in result.phases.items()
        },
        "shares": {
            phase: round(result.share(phase), 4) for phase in PHASES
        },
        "micro": {name: round(value, 3) for name, value in result.micro.items()},
    }


def write_bench_json(result: RoundProfResult, path: str = "BENCH_phases.json") -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_bench_json(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_report(result: RoundProfResult) -> str:
    lines = [
        "Round phase profile — wall time attribution "
        f"({result.machines} machines, {result.duration:.0f}s virtual, "
        f"{result.rounds} rounds, {result.ops_committed} ops)",
        f"  {'phase':>10} | {'seconds':>9} | {'calls':>7} | "
        f"{'mean us':>9} | {'share':>6}",
        "  " + "-" * 52,
    ]
    for phase in PHASES:
        stats = result.phases.get(phase, {"seconds": 0.0, "calls": 0, "mean_us": 0.0})
        lines.append(
            f"  {phase:>10} | {stats['seconds']:>9.4f} | {int(stats['calls']):>7} | "
            f"{stats['mean_us']:>9.1f} | {result.share(phase):>5.1%}"
        )
    lines.append("")
    lines.append("  hot-path microbenchmarks (mean us/call):")
    for name in sorted(result.micro):
        lines.append(f"    {name:<24} {result.micro[name]:>10.2f}")
    return "\n".join(lines)
