"""Responsiveness ablation: GUESSTIMATE vs. the two extremes.

The paper's motivation (sections 1 and 8): one-copy serializability
gives perfect consistency but "is inherently slow" — every operation
blocks for a network round trip — while plain replicated execution is
instant but "there is no consistency between the states of the various
machines".  GUESSTIMATE claims both: zero blocking at issue *and*
eventual agreement on one operation order.

The ablation replays the same synthetic counter workload against all
four models over the same latency profile and reports:

* mean/max **issue latency** — how long the user's thread is blocked;
* **agreement** at the end — do all replicas hold identical state;
* **anomalies** — model-specific damage (lost updates for LWW, replica
  divergence for unsynchronized, conflicts for GUESSTIMATE).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines import LastWriterWins, OneCopySerializable, UnsynchronizedReplicas
from repro.core.operations import CreateObjectOp, PrimitiveOp
from repro.core.serialization import shared_type
from repro.core.shared_object import GSharedObject
from repro.evalkit.harness import SessionConfig, build_system
from repro.net.latency import lan_profile
from repro.sim.eventloop import EventLoop
from repro.spec.contracts import set_checking


@shared_type
class TallyBook(GSharedObject):
    """Per-user tally slots with a shared cap — write-write conflicts
    happen when the total nears the cap, like Sudoku cells filling up."""

    def __init__(self):
        self.tallies: dict[str, int] = {}
        self.cap: int = 10_000

    def copy_from(self, src: "TallyBook") -> None:
        self.tallies = dict(src.tallies)
        self.cap = src.cap

    def bump(self, user: str, amount: int) -> bool:
        if not isinstance(amount, int) or amount < 1:
            return False
        if sum(self.tallies.values()) + amount > self.cap:
            return False
        self.tallies[user] = self.tallies.get(user, 0) + amount
        return True


@dataclass
class ModelRow:
    name: str
    mean_issue_latency: float
    max_issue_latency: float
    ops: int
    agreement: bool
    anomaly_label: str
    anomaly_count: int


@dataclass
class ResponsivenessResult:
    rows: list[ModelRow] = field(default_factory=list)

    def row(self, name: str) -> ModelRow:
        return next(row for row in self.rows if row.name == name)


def _workload(rng: random.Random, machines: list[str], n_ops: int):
    """(delay, machine, amount) triples shared by every model run.

    Bursty on purpose: collaborative users act in flurries, and only
    near-simultaneous writes (within one network delay of each other)
    expose the difference between the consistency models.
    """
    schedule = []
    t = 0.0
    while len(schedule) < n_ops:
        t += rng.expovariate(1.0)  # a burst roughly every second
        burst = rng.randint(2, len(machines))
        for machine in rng.sample(machines, burst):
            if len(schedule) >= n_ops:
                break
            jitter = rng.uniform(0.0, 0.005)  # within one wire delay
            schedule.append((t + jitter, machine, rng.randint(1, 3)))
    return schedule


#: Shared cap on the tally total.  Sized so the workload crosses it
#: mid-run: from then on success depends on what a replica has seen,
#: which is where the consistency models come apart.
CAP = 120


def run(users: int = 5, n_ops: int = 300, seed: int = 17) -> ResponsivenessResult:
    result = ResponsivenessResult()
    rng = random.Random(seed)
    schedule_template = _workload(rng, list(range(users)), n_ops)
    horizon = schedule_template[-1][0] + 60.0

    result.rows.append(_run_guesstimate(users, schedule_template, horizon, seed))
    result.rows.append(
        _run_baseline("one-copy serializable", OneCopySerializable, users,
                      schedule_template, horizon, seed)
    )
    result.rows.append(
        _run_baseline("unsynchronized replicas", UnsynchronizedReplicas, users,
                      schedule_template, horizon, seed)
    )
    result.rows.append(
        _run_baseline("last-writer-wins", LastWriterWins, users,
                      schedule_template, horizon, seed)
    )
    return result


def _run_guesstimate(users, schedule, horizon, seed) -> ModelRow:
    previous = set_checking(False)
    try:
        system = build_system(SessionConfig(users=users, seed=seed))
        system.start(first_sync_delay=0.5)
        apis = system.apis()
        book = apis[0].create_instance(
            TallyBook, init_state={"tallies": {}, "cap": CAP}
        )
        system.run_until_quiesced()
        replicas = [api.join_instance(book.unique_id) for api in apis]
        latencies: list[float] = []
        base = system.loop.now()  # quiescing advanced the clock
        for delay, machine_index, amount in schedule:
            api = apis[machine_index]
            replica = replicas[machine_index]

            def act(api=api, replica=replica, amount=amount):
                start = system.loop.now()
                op = api.create_operation(replica, "bump", api.model.machine_id, amount)
                api.issue_when_possible(op)
                # Issue returns control immediately: latency is the time
                # the user's thread was held, which is ~0 outside windows.
                latencies.append(system.loop.now() - start)

            system.loop.schedule_at(base + delay, act)
        system.run_for(horizon)
        system.run_until_quiesced()
        system.stop()
        return ModelRow(
            name="guesstimate",
            mean_issue_latency=sum(latencies) / len(latencies),
            max_issue_latency=max(latencies),
            ops=len(latencies),
            agreement=system.committed_states_equal(),
            anomaly_label="commit-time conflicts (user notified)",
            anomaly_count=system.metrics.total_conflicts(),
        )
    finally:
        set_checking(previous)


def _run_baseline(name, model_cls, users, schedule, horizon, seed) -> ModelRow:
    previous = set_checking(False)
    try:
        loop = EventLoop()
        model = model_cls(users, loop, lan_profile(), rng=random.Random(seed))
        book_id = "TallyBook:bench:1"
        for machine_id in model.machine_ids:
            CreateObjectOp(
                book_id, TallyBook, {"tallies": {}, "cap": CAP}
            ).execute(model.replicas[machine_id])
        latencies: list[float] = []

        for delay, machine_index, amount in schedule:
            machine_id = model.machine_ids[machine_index]

            def act(machine_id=machine_id, amount=amount):
                start = loop.now()
                op = PrimitiveOp(book_id, "bump", (machine_id, amount))
                if isinstance(model, OneCopySerializable):
                    model.issue(machine_id, op, lambda ok: latencies.append(
                        loop.now() - start))
                else:
                    model.issue(machine_id, op)
                    latencies.append(loop.now() - start)

            loop.schedule_at(delay, act)
        loop.run_until(horizon)

        if isinstance(model, OneCopySerializable):
            anomaly_label, anomaly_count = "blocked issues (pending at end)", model.pending()
        elif isinstance(model, UnsynchronizedReplicas):
            anomaly_label, anomaly_count = (
                "silently diverged replica pairs",
                model.divergent_pairs(),
            )
        else:
            anomaly_label, anomaly_count = "overwritten (lost) updates", model.metrics.overwrites
        return ModelRow(
            name=name,
            mean_issue_latency=sum(latencies) / len(latencies) if latencies else 0.0,
            max_issue_latency=max(latencies) if latencies else 0.0,
            ops=len(latencies),
            agreement=model.all_replicas_equal(),
            anomaly_label=anomaly_label,
            anomaly_count=anomaly_count,
        )
    finally:
        set_checking(previous)


def format_report(result: ResponsivenessResult) -> str:
    lines = [
        "Responsiveness ablation — GUESSTIMATE vs the consistency extremes",
        f"  {'model':<26} | {'mean issue':>10} | {'max issue':>9} | "
        f"{'agree':>5} | anomaly",
        "  " + "-" * 90,
    ]
    for row in result.rows:
        lines.append(
            f"  {row.name:<26} | {row.mean_issue_latency * 1000:>8.2f}ms | "
            f"{row.max_issue_latency * 1000:>7.1f}ms | {str(row.agreement):>5} | "
            f"{row.anomaly_count} {row.anomaly_label}"
        )
    lines += [
        "",
        "  expected shape: serializable pays a network round trip per issue;",
        "  unsynchronized/LWW issue at ~0 but diverge or lose updates;",
        "  guesstimate issues at ~0 AND agrees, paying only commit-time",
        "  conflicts surfaced through completion routines.",
    ]
    return "\n".join(lines)
