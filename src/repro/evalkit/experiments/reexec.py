"""Bounded re-executions (paper section 4).

"A salient feature of the implementation is that though the operational
semantics allows an operation to be executed multiple (possibly
unbounded) number of times, our implementation of the GUESSTIMATE
runtime ensures that an operation is executed at most three times
(including issue and commit)."

The paper also gives the case analysis: an operation submitted outside
[tBeginFlush, tEndUpdate] executes exactly twice (issue + commit); one
submitted inside [tEndFlush, tBeginUpdate] executes exactly three times
(issue + guess re-establishment + commit).

Reproduction: instrument every operation's execution count during a
busy session and report the histogram — it must contain only 2s and 3s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evalkit.harness import SessionConfig, SessionOutcome, run_sudoku_session
from repro.workloads.activity import ActivityModel


@dataclass
class ReexecResult:
    histogram: dict[int, int]
    max_executions: int
    total_ops: int
    fraction_twice: float
    outcome: SessionOutcome


def run(duration: float = 900.0, users: int = 6, seed: int = 3) -> ReexecResult:
    config = SessionConfig(
        users=users,
        duration=duration,
        seed=seed,
        activity=ActivityModel.busy(1.5),  # high rate maximizes in-window issues
    )
    outcome = run_sudoku_session(config)
    histogram = outcome.system.metrics.execution_histogram()
    total = sum(histogram.values())
    return ReexecResult(
        histogram=histogram,
        max_executions=max(histogram, default=0),
        total_ops=total,
        fraction_twice=histogram.get(2, 0) / total if total else 0.0,
        outcome=outcome,
    )


def format_report(result: ReexecResult) -> str:
    lines = [
        "Bounded re-executions (paper section 4)",
        f"  {'executions':>10} | {'operations':>10}",
        "  " + "-" * 25,
    ]
    for count, ops in sorted(result.histogram.items()):
        lines.append(f"  {count:>10} | {ops:>10}")
    lines += [
        "",
        f"  max executions per op: {result.max_executions}"
        "   (paper: at most 3, including issue and commit)",
        f"  executed exactly twice: {result.fraction_twice:.1%}",
    ]
    return "\n".join(lines)
