"""Synchronization-pipeline throughput benchmark (``BENCH_sync.json``).

The paper's stage 1 is serial token passing, so round latency grows
linearly with the machine count.  The rebuilt pipeline adds five
levers — concurrent collection, OpBatch framing, master-side round
pipelining, scheduled rounds (the StartSync pre-announced during the
idle gap, so the collect hop leaves the critical path), and
speculative apply (counts self-assembled from broadcast FlushDones, so
the BeginApply hop leaves it too) — plus flush compaction of
superseded last-write-wins ops.  This experiment measures what they
buy: per-round latency and commit throughput versus *n* machines, for
the sequential baseline and the fully-levered concurrent mode side by
side.

It also validates that the levers change *performance only*: a
commit-point crash (:class:`~repro.net.faults.CommitCrashPlan`) is
injected under each collection mode and the run must converge with
every paper invariant intact (identical ``sc`` and ``C`` everywhere,
``[P](sc) = sg``).

The result serializes to the ``BENCH_sync.json`` the perf trajectory
tracks::

    python -m repro.cli syncscale --quick   # prints the report
    python -m repro.cli syncscale           # full sweep + BENCH_sync.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.evalkit.experiments.durability import DurableCounter
from repro.net.faults import CommitCrashPlan, ScheduledFaults
from repro.runtime.config import RuntimeConfig, SyncConfig
from repro.runtime.system import DistributedSystem

#: Modes measured side by side.  "concurrent" carries the whole
#: tentpole: parallel stage-1 collection plus pipeline depth 2 (the
#: sequential baseline keeps depth 1 — the paper's strictly phased
#: rounds — so the comparison isolates the redesign as shipped).
MODES = ("sequential", "concurrent")


@dataclass
class ModePoint:
    """One (mode, n machines) measurement."""

    mode: str
    machines: int
    rounds: int = 0
    mean_round_s: float = 0.0
    ops_committed: int = 0
    throughput_ops_s: float = 0.0
    op_batches: int = 0
    op_messages: int = 0  # single-op frames (legacy framing), for contrast


@dataclass
class SyncScaleResult:
    machine_counts: list[int]
    duration: float
    points: list[ModePoint] = field(default_factory=list)
    #: mode -> True if the CommitCrashPlan run converged with all
    #: invariants intact
    fault_invariants_ok: dict[str, bool] = field(default_factory=dict)

    def series(self, mode: str) -> list[ModePoint]:
        return [p for p in self.points if p.mode == mode]

    def speedup_at(self, machines: int) -> float:
        """sequential / concurrent mean-round-latency ratio at ``machines``."""
        by_mode = {
            p.mode: p.mean_round_s for p in self.points if p.machines == machines
        }
        if by_mode.get("concurrent", 0.0) <= 0.0:
            return 0.0
        return by_mode.get("sequential", 0.0) / by_mode["concurrent"]


def _mode_config(mode: str, pipeline_depth: int, batch_max_ops: int) -> RuntimeConfig:
    if mode == "sequential":
        sync = SyncConfig(collection="sequential")  # paper baseline, depth 1
    else:
        sync = SyncConfig(
            collection="concurrent",
            batch_max_ops=batch_max_ops,
            pipeline_depth=pipeline_depth,
            scheduled_rounds=True,
            speculative_apply=True,
            compact_flush=True,
        )
    return RuntimeConfig(sync_interval=0.5, sync=sync)


def _drive_workload(
    system: DistributedSystem, duration: float, ops_per_tick: int
) -> str:
    """Every machine issues ``ops_per_tick`` increments ~3x per round."""
    counter = system.apis()[0].create_instance(DurableCounter)
    system.run_until_quiesced()
    uid = counter.unique_id
    replicas = {
        machine_id: system.api(machine_id).join_instance(uid)
        for machine_id in system.machine_ids()
    }
    interval = system.config.sync_interval / 3.0

    def tick(machine_id: str) -> None:
        api = system.api(machine_id)
        for _ in range(ops_per_tick):
            api.invoke(replicas[machine_id], "increment", 10**9)
        if system.loop.now() < deadline:
            system.loop.call_later(interval, lambda: tick(machine_id))

    deadline = system.loop.now() + duration
    for index, machine_id in enumerate(system.machine_ids()):
        # Stagger the start so flushes are not artificially aligned.
        system.loop.call_later(0.01 * index, lambda m=machine_id: tick(m))
    system.run_for(duration)
    system.run_until_quiesced()
    return uid


def _measure(
    mode: str,
    machines: int,
    duration: float,
    seed: int,
    pipeline_depth: int,
    batch_max_ops: int,
    ops_per_tick: int,
) -> ModePoint:
    config = _mode_config(mode, pipeline_depth, batch_max_ops)
    system = DistributedSystem(n_machines=machines, seed=seed, config=config)
    system.start(first_sync_delay=0.1)
    _drive_workload(system, duration, ops_per_tick)
    system.stop()
    system.check_all_invariants()

    metrics = system.metrics
    point = ModePoint(mode=mode, machines=machines)
    point.rounds = len(metrics.sync_records)
    point.mean_round_s = metrics.mean_sync_duration()
    point.ops_committed = sum(r.ops_committed for r in metrics.sync_records)
    point.throughput_ops_s = metrics.commit_throughput()
    point.op_batches = metrics.total_op_batches()
    payloads = system.meshes.operations.stats.payload_counts
    point.op_messages = payloads.get("OpMessage", 0)
    return point


def _validate_under_commit_crash(mode: str, seed: int) -> bool:
    """CommitCrashPlan fault injection: kill m03 at a commit point,
    let the survivors advance, recover it, and check every invariant."""
    faults = ScheduledFaults(commit_crashes=[CommitCrashPlan("m03")])
    config = RuntimeConfig(
        sync_interval=0.5,
        stall_timeout=2.0,
        durability="memory",
        sync=SyncConfig(
            collection=mode,
            pipeline_depth=2 if mode == "concurrent" else 1,
        ),
    )
    system = DistributedSystem(n_machines=4, seed=seed, faults=faults, config=config)
    system.start(first_sync_delay=0.1)
    counter = system.apis()[0].create_instance(DurableCounter)
    system.run_until_quiesced()
    replicas = {
        machine_id: system.api(machine_id).join_instance(counter.unique_id)
        for machine_id in system.machine_ids()
    }

    def issue(machine_id: str, delay: float) -> None:
        system.loop.call_later(
            delay,
            lambda: system.api(machine_id).invoke(
                replicas[machine_id], "increment", 10**9
            ),
        )

    issue("m01", 0.1)
    system.run_for(8.0)  # crash at commit + stall + removal
    if system.node("m03").state != "stopped":
        return False
    for delay in (0.1, 0.6, 1.1):
        issue("m01", delay)
        issue("m02", delay + 0.2)
    system.run_for(6.0)
    system.node("m03").recover_and_rejoin()
    system.run_for(5.0)
    system.run_until_quiesced()
    try:
        system.check_all_invariants()
    except AssertionError:  # pragma: no cover - failure path
        return False
    survivors = [system.node(m) for m in ("m01", "m02", "m03", "m04")]
    return all(node.state == "active" for node in survivors)


def run(
    machine_counts: list[int] | None = None,
    duration: float = 30.0,
    seed: int = 23,
    pipeline_depth: int = 2,
    batch_max_ops: int = 64,
    ops_per_tick: int = 2,
) -> SyncScaleResult:
    counts = machine_counts if machine_counts is not None else [2, 4, 8, 16]
    result = SyncScaleResult(machine_counts=counts, duration=duration)
    for machines in counts:
        for mode in MODES:
            result.points.append(
                _measure(
                    mode,
                    machines,
                    duration,
                    seed + machines,
                    pipeline_depth,
                    batch_max_ops,
                    ops_per_tick,
                )
            )
    for mode in MODES:
        result.fault_invariants_ok[mode] = _validate_under_commit_crash(
            mode, seed
        )
    return result


def to_bench_json(result: SyncScaleResult) -> dict:
    """The ``BENCH_sync.json`` payload (stable schema for trend tooling)."""
    return {
        "benchmark": "syncscale",
        "config": {
            "machine_counts": result.machine_counts,
            "duration_s": result.duration,
        },
        "series": {
            mode: [
                {
                    "machines": p.machines,
                    "rounds": p.rounds,
                    "mean_round_latency_s": round(p.mean_round_s, 6),
                    "ops_committed": p.ops_committed,
                    "commit_throughput_ops_s": round(p.throughput_ops_s, 3),
                    "op_batches": p.op_batches,
                    "op_messages": p.op_messages,
                }
                for p in result.series(mode)
            ]
            for mode in MODES
        },
        "speedup_sequential_over_concurrent": {
            str(machines): round(result.speedup_at(machines), 3)
            for machines in result.machine_counts
        },
        "fault_invariants_ok": dict(result.fault_invariants_ok),
    }


def write_bench_json(result: SyncScaleResult, path: str = "BENCH_sync.json") -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_bench_json(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_report(result: SyncScaleResult) -> str:
    lines = [
        "Synchronization pipeline — round latency and commit throughput",
        f"  ({result.duration:.0f}s virtual per point; concurrent = "
        "parallel collect + OpBatch + pipeline depth 2 + scheduled "
        "rounds + speculative apply)",
        f"  {'machines':>8} | {'mode':>10} | {'rounds':>6} | "
        f"{'mean round (ms)':>15} | {'ops/s':>8} | {'batches':>7}",
        "  " + "-" * 70,
    ]
    for machines in result.machine_counts:
        for mode in MODES:
            point = next(
                p
                for p in result.points
                if p.machines == machines and p.mode == mode
            )
            lines.append(
                f"  {machines:>8} | {mode:>10} | {point.rounds:>6} | "
                f"{point.mean_round_s * 1000:>15.1f} | "
                f"{point.throughput_ops_s:>8.1f} | {point.op_batches:>7}"
            )
    lines.append("")
    for machines in result.machine_counts:
        lines.append(
            f"  n={machines}: sequential/concurrent latency ratio "
            f"{result.speedup_at(machines):.2f}x"
        )
    lines.append("")
    for mode, ok in result.fault_invariants_ok.items():
        status = "ok" if ok else "FAILED"
        lines.append(
            f"  invariants under CommitCrashPlan ({mode}): {status}"
        )
    return "\n".join(lines)
