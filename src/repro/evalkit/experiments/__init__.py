"""Experiment modules, one per figure / in-text claim.  See
:mod:`repro.evalkit` for the index."""
