"""Figure 5: distribution of time taken for synchronization.

Paper setup: "Figure 5 plots the distribution of the time taken for
synchronizations over a long run of the application involving 8 users
solving 2 Sudoku grids.  It can be seen that the time taken by
guesstimate to complete a synchronization is within 0.5 seconds most of
the time.  There are 2 outliers in the distribution where a
synchronization takes more than 12 seconds.  These correspond to the
times when synchronization stalled and the master had to perform a
fault recovery."

Reproduction: an hour-long simulated session with 8 users and 2 grids
on the LAN latency profile, with two injected machine stalls placed
mid-run so the master performs full fault recovery (resend, then remove
+ restart) twice — producing exactly two >12 s outliers — plus one
transiently lost signal healed by a resend alone (a sub-12 s bump, as
in the paper's failure log).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evalkit.harness import SessionConfig, SessionOutcome, run_sudoku_session
from repro.evalkit.stats import Histogram, percentile
from repro.net.faults import CrashPlan, DropPlan, ScheduledFaults

#: The paper's outlier threshold.
OUTLIER_THRESHOLD = 12.0


@dataclass
class Fig5Result:
    histogram: Histogram
    durations: list[float]
    outliers: list[float]
    fraction_within_half_second: float
    median: float
    restarts: int
    outcome: SessionOutcome


def default_faults(duration: float) -> ScheduledFaults:
    """Two full recoveries + one resend-healed loss, spread over the run."""
    return ScheduledFaults(
        drops=[
            DropPlan(
                start=duration * 0.25,
                end=duration * 0.25 + 30.0,
                channel="signals",
                payload_type="YourTurn",
                max_drops=1,
            ),
        ],
        crashes=[
            CrashPlan("m03", start=duration * 0.45, end=duration * 0.45 + 20.0),
            CrashPlan("m06", start=duration * 0.75, end=duration * 0.75 + 20.0),
        ],
    )


def run(
    users: int = 8,
    duration: float = 3600.0,
    seed: int = 42,
    inject_faults: bool = True,
) -> Fig5Result:
    """Run the Figure 5 experiment and bucket the sync times."""
    config = SessionConfig(users=users, duration=duration, seed=seed)
    if inject_faults:
        config.faults = default_faults(duration)
    outcome = run_sudoku_session(config)

    durations = outcome.sync_durations
    histogram = Histogram(
        edges=[0.1, 0.2, 0.3, 0.4, 0.5, 0.75, 1.0, 2.0, 6.0, 12.0]
    )
    histogram.add_all(durations)
    outliers = sorted(d for d in durations if d > OUTLIER_THRESHOLD)
    restarts = sum(
        metrics.restarts
        for metrics in outcome.system.metrics.node_metrics.values()
    )
    return Fig5Result(
        histogram=histogram,
        durations=durations,
        outliers=outliers,
        fraction_within_half_second=histogram.fraction_below(0.5),
        median=percentile(durations, 50),
        restarts=restarts,
        outcome=outcome,
    )


def format_report(result: Fig5Result) -> str:
    lines = [
        "Figure 5 — distribution of time taken for synchronization",
        f"  synchronizations observed : {len(result.durations)}",
        f"  median sync time          : {result.median * 1000:.0f} ms",
        f"  within 0.5 s              : {result.fraction_within_half_second:.1%}"
        "   (paper: 'within 0.5 seconds most of the time')",
        f"  outliers > 12 s           : {len(result.outliers)}"
        f" at {[round(v, 1) for v in result.outliers]}"
        "   (paper: 2 outliers, fault recovery)",
        f"  machine restarts          : {result.restarts}",
        "",
        result.histogram.format(),
    ]
    return "\n".join(lines)
