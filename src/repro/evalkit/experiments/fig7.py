"""Figure 7: number of conflicts vs. number of users.

Paper setup: "Figure 7 shows the number of instances when an operation
that succeeded on issue failed at commit time during our experiments.
These measurements were made by adding a new user for every 100
synchronizations performed by the runtime.  As can be seen conflicts
are very rare even [in] the presence of 8 active users."

Reproduction: start with 2 users, let the runtime perform 100
synchronizations, add a machine (through the live Hello/Welcome join
path), repeat until 8 users; report conflicts observed in each
100-round window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evalkit.harness import SessionConfig, build_system
from repro.spec.contracts import set_checking
from repro.workloads.activity import ActivityModel, ThinkTime
from repro.workloads.drivers import SudokuSession


@dataclass
class Fig7Result:
    user_counts: list[int] = field(default_factory=list)
    conflicts_per_window: list[int] = field(default_factory=list)
    ops_per_window: list[int] = field(default_factory=list)
    total_conflicts: int = 0
    total_issued: int = 0


def run(
    start_users: int = 2,
    max_users: int = 8,
    rounds_per_window: int = 100,
    seed: int = 21,
    mistake_rate: float = 0.05,
) -> Fig7Result:
    """Grow the system one user per 100-sync window, counting conflicts."""
    config = SessionConfig(users=start_users, seed=seed)
    previous = set_checking(False)
    try:
        system = build_system(config)
        # Calibrated to the paper's observed pace: 8 volunteers solved
        # ~2 grids (~160 cells) in an hour, i.e. one fill per ~20 s per
        # player.  Faster rates inflate same-cell races far beyond the
        # "very rare" regime Figure 7 reports.
        activity = ActivityModel(
            active=True, think=ThinkTime(mean=12.0), mistake_rate=mistake_rate
        )
        session = SudokuSession(system, n_grids=2, activity=activity, seed=seed)
        session.setup()
        session.start()

        result = Fig7Result()
        last_conflicts = 0
        last_issued = 0
        users = start_users
        while users <= max_users:
            target_rounds = len(system.metrics.sync_records) + rounds_per_window
            guard = 0
            while len(system.metrics.sync_records) < target_rounds:
                system.run_for(5.0)
                guard += 1
                if guard > 10_000:  # pragma: no cover - defensive
                    raise RuntimeError("synchronizations stopped happening")
            conflicts = system.metrics.total_conflicts()
            issued = system.metrics.total_issued()
            result.user_counts.append(users)
            result.conflicts_per_window.append(conflicts - last_conflicts)
            result.ops_per_window.append(issued - last_issued)
            last_conflicts, last_issued = conflicts, issued
            if users == max_users:
                break
            node = system.add_machine()
            system.run_until_quiesced(max_time=120.0)
            session.add_player(node.machine_id)
            users += 1

        session.stop()
        system.run_until_quiesced(max_time=120.0)
        system.stop()
        result.total_conflicts = system.metrics.total_conflicts()
        result.total_issued = system.metrics.total_issued()
        return result
    finally:
        set_checking(previous)


def format_report(result: Fig7Result) -> str:
    lines = [
        "Figure 7 — number of conflicts vs. number of users",
        "  (each row: one 100-synchronization window at that user count)",
        f"  {'users':>5} | {'conflicts':>9} | {'ops issued':>10}",
        "  " + "-" * 32,
    ]
    for users, conflicts, ops in zip(
        result.user_counts, result.conflicts_per_window, result.ops_per_window
    ):
        lines.append(f"  {users:>5} | {conflicts:>9} | {ops:>10}")
    rate = (
        100.0 * result.total_conflicts / result.total_issued
        if result.total_issued
        else 0.0
    )
    lines += [
        "",
        f"  total: {result.total_conflicts} conflicts / "
        f"{result.total_issued} issued ops ({rate:.1f}%)"
        "   (paper: 'conflicts are very rare even [with] 8 active users')",
    ]
    return "\n".join(lines)
