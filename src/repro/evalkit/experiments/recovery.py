"""Failure and recovery (paper section 7, "Failure and recovery").

"During the one hour period for which we gathered statistics,
GUESSTIMATE encountered three failures, once when one of the machines
was restarted while the application was running, and twice when the
synchronization was stalled possibly because a message was lost in
transmission.  GUESSTIMATE recovered in all three cases automatically,
once by resending the lost message and twice by removing the machine
from the stalled synchronization loop and sending a restart message,
and none of the other users were even aware of the failure."

Reproduction: one hour, three injected faults — one transient signal
loss (healed by a resend) and two machine stalls (healed by removal +
restart).  "None of the other users were aware" is checked concretely:
every surviving machine keeps issuing and committing operations
throughout, and the system converges with all invariants intact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.evalkit.harness import SessionConfig, SessionOutcome, run_sudoku_session
from repro.net.faults import CrashPlan, DropPlan, ScheduledFaults
from repro.runtime.config import RuntimeConfig, SyncConfig


@dataclass
class RecoveryResult:
    failures_injected: int
    resend_recoveries: int
    removal_recoveries: int
    restarts: int
    machines_active_at_end: int
    users_unaware: bool  # every non-faulted machine kept committing
    converged: bool
    outcome: SessionOutcome


def run(duration: float = 3600.0, users: int = 8, seed: int = 13) -> RecoveryResult:
    faults = ScheduledFaults(
        drops=[
            DropPlan(
                start=duration * 0.2,
                end=duration * 0.2 + 30.0,
                channel="signals",
                payload_type="YourTurn",
                max_drops=1,
            ),
        ],
        crashes=[
            CrashPlan("m04", start=duration * 0.5, end=duration * 0.5 + 20.0),
            CrashPlan("m07", start=duration * 0.8, end=duration * 0.8 + 20.0),
        ],
    )
    config = SessionConfig(
        users=users,
        duration=duration,
        seed=seed,
        faults=faults,
        # The lost-YourTurn fault only exists under serial token
        # passing, so pin the paper's sequential collection mode.
        runtime=RuntimeConfig(sync=SyncConfig(collection="sequential")),
    )
    outcome = run_sudoku_session(config)
    system = outcome.system

    records = system.metrics.sync_records
    resends = sum(1 for record in records if record.resends and not record.removals)
    removals = sum(1 for record in records if record.removals)
    restarts = sum(
        metrics.restarts for metrics in system.metrics.node_metrics.values()
    )
    faulted = {"m04", "m07"}
    unaware = all(
        metrics.ops_committed_ok + metrics.ops_committed_failed > 0
        for machine_id, metrics in system.metrics.node_metrics.items()
        if machine_id not in faulted
    )
    converged = (
        system.committed_states_equal()
        and system.convergence_invariant_holds()
        and all(node.state == "active" for node in system.nodes.values())
    )
    return RecoveryResult(
        failures_injected=3,
        resend_recoveries=resends,
        removal_recoveries=removals,
        restarts=restarts,
        machines_active_at_end=len(system.active_nodes()),
        users_unaware=unaware,
        converged=converged,
        outcome=outcome,
    )


def format_report(result: RecoveryResult) -> str:
    return "\n".join(
        [
            "Failure & recovery (paper section 7)",
            f"  failures injected          : {result.failures_injected}"
            "   (paper: 3 — one restart, two stalls)",
            f"  recovered by resend alone  : {result.resend_recoveries}",
            f"  recovered by remove+restart: {result.removal_recoveries}",
            f"  machine restarts           : {result.restarts}",
            f"  machines active at end     : {result.machines_active_at_end}",
            f"  other users unaware        : {result.users_unaware}"
            "   (kept committing throughout)",
            f"  converged with invariants  : {result.converged}",
        ]
    )
