"""Delta guess-refresh benchmark (``BENCH_refresh.json``).

The paper's ApplyUpdatesFromMesh refreshes the guesstimated store with
a *full copy* of the committed store — O(total state) per round, even
when a round's operations touched two objects out of thousands.  The
versioned-store rebuild copies only objects whose committed version
advanced plus objects the pending replay dirtied — O(touched state).

This experiment measures exactly that trade on a many-objects workload:
*n* counters live in the store, every round's operations touch 1-2 of
them (singles plus the occasional two-object atomic).  Both refresh
strategies run side by side (``delta_refresh`` on/off) over identical
workloads, and the headline number is ``refresh_objects_copied`` per
round — the naive copy moves the whole store every round, the delta a
handful.  Durable-memory snapshotting is left on so the version-keyed
``snapshot_states`` cache is exercised too (unchanged objects re-use
their serialized entry across WAL snapshots).

Every run must still converge with the paper invariants intact
(``check_all_invariants`` — identical ``sc``/``C`` everywhere and
``[P](sc) = sg``); the speedup is worthless if the semantics drifted.

::

    python -m repro.cli refresh --quick   # prints the report
    python -m repro.cli refresh           # full sweep + BENCH_refresh.json
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from repro.evalkit.experiments.durability import DurableCounter
from repro.runtime.config import RuntimeConfig, SyncConfig
from repro.runtime.system import DistributedSystem

#: Refresh strategies measured side by side.  "full" is the paper's
#: literal copy of the whole committed store every round; "delta" the
#: versioned-store rebuild (copy only what changed).
MODES = ("full", "delta")

#: increment() never saturates in these runs
LIMIT = 10**9


@dataclass
class ModePoint:
    """One (refresh mode, object count) measurement — workload phase
    only (object creation is excluded by baseline subtraction)."""

    mode: str
    objects: int
    rounds: int = 0
    refresh_rounds: int = 0
    refresh_objects_copied: int = 0
    refresh_objects_live: int = 0
    copies_per_round: float = 0.0
    #: copied / live — 1.0 for the naive full copy, << 1 for delta
    copy_ratio: float = 0.0
    ops_committed: int = 0
    mean_round_s: float = 0.0
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0
    snapshot_cache_hits: int = 0
    snapshot_cache_misses: int = 0
    invariants_ok: bool = False


@dataclass
class RefreshScaleResult:
    objects: int
    machines: int
    duration: float
    points: list[ModePoint] = field(default_factory=list)

    def point(self, mode: str) -> ModePoint:
        return next(p for p in self.points if p.mode == mode)

    def copy_reduction(self) -> float:
        """full / delta objects-copied-per-refresh ratio (the headline:
        how many fewer copies the versioned store does per round)."""
        full, delta = self.point("full"), self.point("delta")
        if full.refresh_rounds == 0 or delta.refresh_rounds == 0:
            return 0.0
        full_rate = full.refresh_objects_copied / full.refresh_rounds
        delta_rate = delta.refresh_objects_copied / delta.refresh_rounds
        if delta_rate <= 0.0:
            return float("inf")
        return full_rate / delta_rate


def _config(mode: str) -> RuntimeConfig:
    return RuntimeConfig(
        sync_interval=0.5,
        delta_refresh=(mode == "delta"),
        # durable-memory snapshots exercise the version-keyed
        # snapshot_states cache without touching disk
        durability="memory",
        snapshot_interval=8,
        sync=SyncConfig(batch_max_ops=256),
    )


def _create_objects(system: DistributedSystem, n_objects: int) -> list[str]:
    """Create the counter population from one machine and quiesce."""
    api = system.apis()[0]
    uids = [api.create_instance(DurableCounter).unique_id for _ in range(n_objects)]
    system.run_until_quiesced()
    return uids


def _drive_workload(
    system: DistributedSystem, uids: list[str], duration: float, seed: int
) -> None:
    """Every machine touches 1-2 random counters ~3x per round.

    Three out of four ticks issue one single-object increment; every
    fourth issues a two-object atomic (increment both or neither), so
    rounds exercise both op shapes the delta refresh must track.
    """
    rng = random.Random(seed)
    interval = system.config.sync_interval / 3.0
    deadline = system.loop.now() + duration

    def tick(machine_id: str, count: int) -> None:
        api = system.api(machine_id)
        if count % 4 == 3:
            first, second = rng.sample(uids, 2)
            api.invoke(
                first,
                "increment",
                LIMIT,
                atomic_with=api.create_operation(second, "increment", LIMIT),
            )
        else:
            api.invoke(rng.choice(uids), "increment", LIMIT)
        if system.loop.now() < deadline:
            system.loop.call_later(
                interval, lambda: tick(machine_id, count + 1)
            )

    for index, machine_id in enumerate(system.machine_ids()):
        # Stagger the start so flushes are not artificially aligned.
        system.loop.call_later(0.01 * index, lambda m=machine_id: tick(m, 0))
    system.run_for(duration)
    system.run_until_quiesced()


def _refresh_totals(system: DistributedSystem) -> tuple[int, int, int]:
    nodes = system.metrics.node_metrics.values()
    return (
        sum(m.refresh_rounds for m in nodes),
        sum(m.refresh_objects_copied for m in nodes),
        sum(m.refresh_objects_live for m in nodes),
    )


def _measure(
    mode: str, objects: int, machines: int, duration: float, seed: int
) -> ModePoint:
    system = DistributedSystem(
        n_machines=machines, seed=seed, config=_config(mode)
    )
    system.start(first_sync_delay=0.1)
    uids = _create_objects(system, objects)
    # Baseline after setup: creation dirties every object once in both
    # modes, which would drown the steady-state signal.
    base_rounds, base_copied, base_live = _refresh_totals(system)
    base_sync = len(system.metrics.sync_records)
    _drive_workload(system, uids, duration, seed + 1)
    system.stop()

    point = ModePoint(mode=mode, objects=objects)
    try:
        system.check_all_invariants()
        point.invariants_ok = True
    except AssertionError:  # pragma: no cover - failure path
        point.invariants_ok = False

    rounds, copied, live = _refresh_totals(system)
    point.refresh_rounds = rounds - base_rounds
    point.refresh_objects_copied = copied - base_copied
    point.refresh_objects_live = live - base_live
    if point.refresh_rounds > 0:
        point.copies_per_round = point.refresh_objects_copied / point.refresh_rounds
    if point.refresh_objects_live > 0:
        point.copy_ratio = point.refresh_objects_copied / point.refresh_objects_live

    records = system.metrics.sync_records[base_sync:]
    point.rounds = len(records)
    point.ops_committed = sum(r.ops_committed for r in records)
    if records:
        point.mean_round_s = sum(r.duration for r in records) / len(records)
    point.decode_cache_hits = system.metrics.total_decode_cache_hits()
    point.decode_cache_misses = system.metrics.total_decode_cache_misses()
    for machine_id in system.machine_ids():
        store = system.node(machine_id).model.committed
        point.snapshot_cache_hits += store.snapshot_cache_hits
        point.snapshot_cache_misses += store.snapshot_cache_misses
    return point


def run(
    objects: int = 2000,
    machines: int = 4,
    duration: float = 30.0,
    seed: int = 29,
) -> RefreshScaleResult:
    result = RefreshScaleResult(
        objects=objects, machines=machines, duration=duration
    )
    for mode in MODES:
        result.points.append(_measure(mode, objects, machines, duration, seed))
    return result


def to_bench_json(result: RefreshScaleResult) -> dict:
    """The ``BENCH_refresh.json`` payload (stable schema for trend
    tooling)."""
    return {
        "benchmark": "refresh",
        "config": {
            "objects": result.objects,
            "machines": result.machines,
            "duration_s": result.duration,
        },
        "modes": {
            p.mode: {
                "rounds": p.rounds,
                "refresh_rounds": p.refresh_rounds,
                "refresh_objects_copied": p.refresh_objects_copied,
                "refresh_objects_live": p.refresh_objects_live,
                "copies_per_round": round(p.copies_per_round, 3),
                "copy_ratio": round(p.copy_ratio, 6),
                "ops_committed": p.ops_committed,
                "mean_round_latency_s": round(p.mean_round_s, 6),
                "decode_cache_hits": p.decode_cache_hits,
                "decode_cache_misses": p.decode_cache_misses,
                "snapshot_cache_hits": p.snapshot_cache_hits,
                "snapshot_cache_misses": p.snapshot_cache_misses,
                "invariants_ok": p.invariants_ok,
            }
            for p in result.points
        },
        "copy_reduction_full_over_delta": round(result.copy_reduction(), 3),
    }


def write_bench_json(
    result: RefreshScaleResult, path: str = "BENCH_refresh.json"
) -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_bench_json(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_report(result: RefreshScaleResult) -> str:
    lines = [
        "Guess refresh — objects copied committed -> guess per round",
        f"  ({result.objects} live objects, {result.machines} machines, "
        f"{result.duration:.0f}s virtual; ops touch 1-2 objects)",
        f"  {'mode':>6} | {'refreshes':>9} | {'copied':>9} | "
        f"{'copied/round':>12} | {'copy ratio':>10} | {'invariants':>10}",
        "  " + "-" * 70,
    ]
    for point in result.points:
        lines.append(
            f"  {point.mode:>6} | {point.refresh_rounds:>9} | "
            f"{point.refresh_objects_copied:>9} | "
            f"{point.copies_per_round:>12.1f} | {point.copy_ratio:>10.4f} | "
            f"{'ok' if point.invariants_ok else 'FAILED':>10}"
        )
    delta = result.point("delta")
    lines.append("")
    lines.append(
        f"  copy reduction (full/delta, per refresh): "
        f"{result.copy_reduction():.1f}x"
    )
    lines.append(
        f"  decode cache: {delta.decode_cache_hits} hits / "
        f"{delta.decode_cache_misses} misses;  snapshot cache: "
        f"{delta.snapshot_cache_hits} hits / {delta.snapshot_cache_misses} "
        "misses (delta mode)"
    )
    return "\n".join(lines)
