"""Application sizes (paper section 6).

"All applications are written with about 500-700 lines of code."

The paper's point is that GUESSTIMATE keeps application code small
because replication, synchronization and fault tolerance live in the
runtime.  We count the lines of each application module (shared classes
plus client layer) the same way, and report them next to the paper's
band.  Python is terser than 2010 C# WinForms code, so our apps land
below the band; the claim that holds is the *ratio*: every app is a
small fraction of the runtime it sits on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import repro.apps as apps_pkg

#: app name -> module file(s) relative to the apps package directory
APP_FILES: dict[str, list[str]] = {
    "sudoku": ["sudoku/board.py", "sudoku/client.py", "sudoku/generator.py"],
    "event planner": ["event_planner.py"],
    "message board": ["message_board.py"],
    "car pool": ["carpool.py"],
    "auction": ["auction.py"],
    "microblog": ["microblog.py"],
    "accounts (shared)": ["accounts.py"],
}


@dataclass
class AppSizesResult:
    rows: list[tuple[str, int, int]] = field(default_factory=list)  # name, loc, sloc
    runtime_sloc: int = 0


def _count(path: Path) -> tuple[int, int]:
    """(physical lines, source lines excluding blanks/comments/docstrings)."""
    text = path.read_text()
    lines = text.splitlines()
    sloc = 0
    in_doc = False
    for line in lines:
        stripped = line.strip()
        if in_doc:
            if '"""' in stripped or "'''" in stripped:
                in_doc = False
            continue
        if stripped.startswith('"""') or stripped.startswith("'''"):
            quote = stripped[:3]
            if not (stripped.endswith(quote) and len(stripped) >= 6):
                in_doc = True
            continue
        if not stripped or stripped.startswith("#"):
            continue
        sloc += 1
    return len(lines), sloc


def run() -> AppSizesResult:
    result = AppSizesResult()
    apps_dir = Path(apps_pkg.__file__).parent
    for name, files in APP_FILES.items():
        loc = sloc = 0
        for rel in files:
            file_loc, file_sloc = _count(apps_dir / rel)
            loc += file_loc
            sloc += file_sloc
        result.rows.append((name, loc, sloc))
    repro_dir = apps_dir.parent
    for sub in ("core", "runtime", "net", "sim"):
        for path in (repro_dir / sub).rglob("*.py"):
            result.runtime_sloc += _count(path)[1]
    return result


def format_report(result: AppSizesResult) -> str:
    lines = [
        "Application sizes (paper: 'about 500-700 lines of code' each)",
        f"  {'application':<18} | {'lines':>6} | {'source lines':>12}",
        "  " + "-" * 44,
    ]
    for name, loc, sloc in result.rows:
        lines.append(f"  {name:<18} | {loc:>6} | {sloc:>12}")
    lines += [
        "",
        f"  runtime beneath them (core+runtime+net+sim): "
        f"{result.runtime_sloc} source lines",
        "  shape reproduced: each app is a small fraction of the runtime.",
    ]
    return "\n".join(lines)
