"""Per-workload conflict and completion report (``BENCH_workloads.json``).

The workload zoo (:mod:`repro.simtest.workload`) exists because
different applications stress GUESSTIMATE's guess-then-commit model in
different ways: Sudoku conflicts on cells, the marketplace loses whole
Atomic settlements, the hostile profile is mostly rejected at issue.
This experiment makes those profiles *measurable*: every workload runs
the same faultless scenario shape (same cluster, same sync pipeline,
same duration), and the report shows per workload how attempted work
splits into

* **rejected at issue** — the guess already said no (free: nothing hits
  the wire);
* **conflicts/overrides** — succeeded on the guess, failed at commit
  (the cost of optimism: the issuing user saw a tentative state that
  did not survive serialization);
* **committed ok** — survived both.

It doubles as the zoo's convergence gate: every run executes under the
full probe set (refresh oracle, committed-prefix agreement, the
convergence probes), and any violation fails the experiment.

::

    python -m repro.cli zoo --quick   # prints the report
    python -m repro.cli zoo           # full sweep + BENCH_workloads.json
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.simtest.runner import run_scenario
from repro.simtest.scenario import WORKLOADS, ScenarioSpec

#: Zoo members measured side by side (all of them).
ZOO = tuple(WORKLOADS)

#: Per-workload (think_mean, n_grids) for comparable sessions.
_PROFILE = {
    "sudoku": (2.0, 1),
    "board": (1.5, 3),
    "listdoc": (1.5, 2),
    "counters": (1.2, 3),
    "market": (1.5, 2),
    "hostile": (1.0, 1),
}


def _faultless_spec(workload: str, seed: int, duration: float) -> ScenarioSpec:
    """One comparable scenario: fixed cluster and pipeline, no faults —
    conflicts in this report come from *concurrency*, not from chaos."""
    think_mean, n_grids = _PROFILE[workload]
    return ScenarioSpec(
        seed=seed,
        n_machines=4,
        collection="concurrent",
        batch_max_ops=8,
        pipeline_depth=2,
        sync_interval=0.5,
        stall_timeout=2.5,
        snapshot_interval=4,
        workload=workload,
        think_mean=think_mean,
        n_grids=n_grids,
        duration=duration,
    )


@dataclass
class WorkloadPoint:
    """Aggregated counters for one workload across its seeds."""

    workload: str
    seeds: int = 0
    actions: int = 0
    issued: int = 0
    rejected_at_issue: int = 0
    committed_ok: int = 0
    committed_failed: int = 0
    conflicts: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def attempts(self) -> int:
        """Everything users tried: ``issued`` counts only ops the guess
        accepted (``notify_issued`` fires after the guess-execution
        succeeds), so issue-time rejections are *additional* attempts,
        not a subset of ``issued``."""
        return self.issued + self.rejected_at_issue

    @property
    def reject_rate(self) -> float:
        return self.rejected_at_issue / self.attempts if self.attempts else 0.0

    @property
    def conflict_rate(self) -> float:
        """Overrides per issued op: the optimism tax."""
        return self.conflicts / self.issued if self.issued else 0.0

    @property
    def completion_rate(self) -> float:
        """Issued ops that survived commit; the remainder either lost a
        conflict or was still in flight when the run ended."""
        return self.committed_ok / self.issued if self.issued else 0.0


@dataclass
class ZooResult:
    duration: float
    seeds_per_workload: int
    points: list[WorkloadPoint] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return all(not p.violations for p in self.points)

    def point(self, workload: str) -> WorkloadPoint:
        return next(p for p in self.points if p.workload == workload)


def run(seeds_per_workload: int = 3, duration: float = 45.0) -> ZooResult:
    result = ZooResult(duration=duration, seeds_per_workload=seeds_per_workload)
    for workload in ZOO:
        point = WorkloadPoint(workload=workload)
        for seed in range(seeds_per_workload):
            spec = _faultless_spec(workload, seed, duration)
            outcome = run_scenario(spec, record_trace=False)
            point.seeds += 1
            point.actions += outcome.actions
            point.issued += outcome.op_metrics.get("issued", 0)
            point.rejected_at_issue += outcome.op_metrics.get(
                "rejected_at_issue", 0
            )
            point.committed_ok += outcome.op_metrics.get("committed_ok", 0)
            point.committed_failed += outcome.op_metrics.get(
                "committed_failed", 0
            )
            point.conflicts += outcome.op_metrics.get("conflicts", 0)
            point.violations.extend(
                f"seed {seed}: {violation}" for violation in outcome.violations
            )
        result.points.append(point)
    return result


def to_bench_json(result: ZooResult) -> dict:
    """The ``BENCH_workloads.json`` payload (stable schema)."""
    return {
        "benchmark": "workload_zoo",
        "config": {
            "seeds_per_workload": result.seeds_per_workload,
            "duration_s": result.duration,
        },
        "workloads": {
            point.workload: {
                "actions": point.actions,
                "attempts": point.attempts,
                "ops_issued": point.issued,
                "rejected_at_issue": point.rejected_at_issue,
                "committed_ok": point.committed_ok,
                "committed_failed": point.committed_failed,
                "conflicts": point.conflicts,
                "reject_rate": round(point.reject_rate, 4),
                "conflict_rate": round(point.conflict_rate, 4),
                "completion_rate": round(point.completion_rate, 4),
                "violations": list(point.violations),
            }
            for point in result.points
        },
        "clean": result.clean,
    }


def write_bench_json(result: ZooResult, path: str = "BENCH_workloads.json") -> str:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_bench_json(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_report(result: ZooResult) -> str:
    lines = [
        "Workload zoo — per-workload conflict/override/completion profile",
        f"  ({result.seeds_per_workload} seed(s) x {result.duration:.0f}s "
        "virtual each; 4 machines, concurrent collection, no faults)",
        f"  {'workload':>9} | {'issued':>6} | {'rej@issue':>9} | "
        f"{'conflicts':>9} | {'ok':>6} | {'conflict%':>9} | {'complete%':>9}",
        "  " + "-" * 72,
    ]
    for point in result.points:
        lines.append(
            f"  {point.workload:>9} | {point.issued:>6} | "
            f"{point.rejected_at_issue:>9} | {point.conflicts:>9} | "
            f"{point.committed_ok:>6} | {point.conflict_rate * 100:>8.1f}% | "
            f"{point.completion_rate * 100:>8.1f}%"
        )
    lines.append("")
    if result.clean:
        lines.append("  all runs converged: no probe violations")
    else:  # pragma: no cover - failure path
        for point in result.points:
            for violation in point.violations:
                lines.append(f"  VIOLATION [{point.workload}] {violation}")
    return "\n".join(lines)
