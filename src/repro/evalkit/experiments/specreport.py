"""Specifications and contracts report (paper section 6).

"For our final version of Sudoku with contracts, Spec# generated 323
assertions out of which boogie was able to verify 271 as correct while
the remaining 52 were translated into runtime checks."

Our verifier quantifies each declared contract clause over
finite/sampled domains.  Absolute assertion counts differ from Spec#'s
(its VC generation explodes contracts into many low-level assertions);
what reproduces is the *shape*: a majority of assertions discharged
statically, a minority left as runtime checks, and zero refuted.

The report covers every shared class of all six applications.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.apps.accounts import UserDirectory
from repro.apps.auction import AuctionHouse
from repro.apps.carpool import CarPool
from repro.apps.event_planner import EventPlanner
from repro.apps.message_board import MessageBoard
from repro.apps.microblog import MicroBlog
from repro.apps.sudoku import SudokuBoard, generate_puzzle
from repro.spec import Verifier, choices, integers, product, sampled
from repro.spec.report import VerificationReport


@dataclass
class SpecReportResult:
    reports: list[VerificationReport] = field(default_factory=list)
    total: int = 0
    verified: int = 0
    refuted: int = 0
    runtime_checks: int = 0

    def report_for(self, class_name: str) -> VerificationReport:
        return next(r for r in self.reports if r.class_name == class_name)


# -- state domains per application -------------------------------------------------


def _sudoku_states():
    def build(seed: int) -> SudokuBoard:
        rng = random.Random(seed)
        board = SudokuBoard()
        puzzle, _solution = generate_puzzle(rng, clues=40, unique=False)
        board.load(puzzle)
        return board

    # Sampled: the space of boards is astronomically large, so Sudoku
    # obligations can be refuted but not proven — they become runtime
    # checks, which is exactly where most of Spec#'s 52 came from.
    return sampled(lambda rng: build(rng.randrange(1 << 30)), "sudoku-boards")


def _directory_states():
    def build(config: tuple) -> UserDirectory:
        n_users, n_sessions = config
        directory = UserDirectory()
        for index in range(n_users):
            directory.users[f"u{index}"] = "pw"
        for index in range(min(n_sessions, n_users)):
            directory.sessions[f"u{index}"] = f"m{index % 2 + 1:02d}"
        return directory

    return product(integers(0, 3), integers(0, 2)).map(build, "directories")


def _planner_states():
    def build(config: tuple) -> EventPlanner:
        capacity, attendees = config
        planner = EventPlanner()
        filled = min(attendees, capacity)
        planner.events["party"] = {
            "capacity": capacity,
            "attendees": [f"u{i}" for i in range(filled)],
            # A waiter exists only when the event is actually full.
            "waitlist": ["u9"] if filled == capacity else [],
        }
        planner.events["talk"] = {"capacity": 2, "attendees": [], "waitlist": []}
        return planner

    return product(integers(1, 3), integers(0, 3)).map(build, "planners")


def _board_states():
    def build(n_posts: int) -> MessageBoard:
        board = MessageBoard()
        board.topics["general"] = [["alice", f"post {i}"] for i in range(n_posts)]
        return board

    return integers(0, 3).map(build, "boards")


def _carpool_states():
    def build(config: tuple) -> CarPool:
        seats, riders = config
        pool = CarPool()
        pool.vehicles["car1"] = {
            "event": "party",
            "driver": "dave",
            "seats": seats,
            "riders": [f"u{i}" for i in range(min(riders, seats))],
        }
        pool.vehicles["car2"] = {
            "event": "party",
            "driver": "erin",
            "seats": 1,
            "riders": [],
        }
        return pool

    return product(integers(1, 3), integers(0, 3)).map(build, "pools")


def _auction_states():
    def build(config: tuple) -> AuctionHouse:
        reserve, bid = config
        house = AuctionHouse()
        house.items["vase"] = {
            "seller": "sam",
            "reserve": reserve,
            "open": True,
            "best_bid": None if bid < reserve else ["bob", bid],
        }
        return house

    return product(integers(0, 2), integers(-1, 4)).map(build, "houses")


def _microblog_states():
    def build(config: tuple) -> MicroBlog:
        n_handles, n_posts = config
        blog = MicroBlog()
        blog.handles = [f"h{i}" for i in range(n_handles)]
        blog.follows = {handle: [] for handle in blog.handles}
        if n_handles >= 2:
            blog.follows["h0"] = ["h1"]
        blog.posts = [["h0", f"msg {i}"] for i in range(min(n_posts, n_handles and 3))]
        if n_handles == 0:
            blog.posts = []
        return blog

    return product(integers(0, 3), integers(0, 2)).map(build, "blogs")


def _cases() -> list[tuple[type, object, dict]]:
    users = choices(["u0", "u1", "u9", ""], "users")
    return [
        (
            SudokuBoard,
            _sudoku_states(),
            {
                "update": product(integers(0, 10), integers(0, 10), integers(0, 10)),
                "clear": product(integers(0, 10), integers(0, 10)),
            },
        ),
        (
            UserDirectory,
            _directory_states(),
            {
                "register": product(choices(["u0", "u5", ""]), choices(["pw"])),
                "signin": product(
                    choices(["u0", "u5"]), choices(["pw", "bad"]), choices(["m01"])
                ),
                "signout": product(choices(["u0", "u5"]), choices(["m01", "m02"])),
            },
        ),
        (
            EventPlanner,
            _planner_states(),
            {
                "create_event": product(choices(["party", "gig", ""]), integers(0, 2)),
                "join": product(users, choices(["party", "talk", "nope"])),
                "leave": product(users, choices(["party", "talk", "nope"])),
                "join_or_wait": product(users, choices(["party", "talk", "nope"])),
                "cancel_wait": product(users, choices(["party", "talk", "nope"])),
            },
        ),
        (
            MessageBoard,
            _board_states(),
            {
                "create_topic": product(choices(["general", "random", ""])),
                "post": product(
                    choices(["general", "nope"]), choices(["alice", "bob", ""]),
                    choices(["hi"]),
                ),
                "delete_post": product(
                    choices(["general", "nope"]), integers(-1, 3),
                    choices(["alice", "bob"]),
                ),
            },
        ),
        (
            CarPool,
            _carpool_states(),
            {
                "offer_vehicle": product(
                    choices(["car1", "car9", ""]), choices(["party"]),
                    choices(["dave"]), integers(0, 2),
                ),
                "get_ride": product(
                    users, choices(["party", "nope"]), choices([None, "car2"])
                ),
                "cancel_ride": product(users, choices(["party", "nope"])),
            },
        ),
        (
            AuctionHouse,
            _auction_states(),
            {
                "list_item": product(
                    choices(["vase", "coin", ""]), choices(["sam"]), integers(-1, 2)
                ),
                "place_bid": product(
                    choices(["vase", "nope"]), choices(["bob", "carl", "sam", ""]),
                    integers(-1, 5),
                ),
                "close_auction": product(
                    choices(["vase", "nope"]), choices(["sam", "bob"])
                ),
            },
        ),
        (
            MicroBlog,
            _microblog_states(),
            {
                "register": product(choices(["h0", "h9", ""])),
                "follow": product(choices(["h0", "h1", "h9"]), choices(["h0", "h1", "h9"])),
                "unfollow": product(choices(["h0", "h1", "h9"]), choices(["h0", "h1"])),
                "post": product(choices(["h0", "h9"]), choices(["hello", "", "x" * 141])),
            },
        ),
    ]


def run(budget: int = 600, seed: int = 0) -> SpecReportResult:
    """Verify every application class; aggregate the classification."""
    result = SpecReportResult()
    verifier = Verifier(budget=budget, seed=seed)
    # Sudoku states are expensive to generate (a fresh puzzle each), and
    # its domain is sampled anyway — a smaller budget changes nothing
    # about the classification, only the refutation search depth.
    sudoku_verifier = Verifier(budget=min(budget, 120), seed=seed)
    for cls, states, args in _cases():
        active = sudoku_verifier if cls is SudokuBoard else verifier
        report = active.verify_class(cls, states, args)
        result.reports.append(report)
        result.total += report.total
        result.verified += report.verified
        result.refuted += report.refuted
        result.runtime_checks += report.runtime_checks
    return result


def format_report(result: SpecReportResult) -> str:
    lines = [
        "Specifications and contracts (paper section 6)",
        f"  {'class':<14} | {'assertions':>10} | {'verified':>8} | "
        f"{'refuted':>7} | {'runtime':>7}",
        "  " + "-" * 58,
    ]
    for report in result.reports:
        lines.append(
            f"  {report.class_name:<14} | {report.total:>10} | "
            f"{report.verified:>8} | {report.refuted:>7} | "
            f"{report.runtime_checks:>7}"
        )
    lines += [
        "  " + "-" * 58,
        f"  {'TOTAL':<14} | {result.total:>10} | {result.verified:>8} | "
        f"{result.refuted:>7} | {result.runtime_checks:>7}",
        "",
        "  paper (Sudoku, Spec#/Boogie): 323 assertions, 271 verified,",
        "  52 runtime checks — same shape: majority discharged statically,",
        "  remainder guarded at runtime, none refuted.",
    ]
    return "\n".join(lines)
