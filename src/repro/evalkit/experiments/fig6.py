"""Figure 6: average time to synchronize vs. number of users.

Paper observations: (1) "presence or absence of user activity does not
affect the synchronization time by much.  This indicates that the
dominant component of the time for synchronization is network delay."
(2) "the time for synchronization increases linearly with number of
users ... even assuming a linear increase guesstimate should easily
scale to a 100 users as even with 100 users the average time to
synchronize would be within 3 seconds."

Reproduction: sweep users 2..8 in both activity modes, average sync
times with the paper's outlier rule (ignore > 12 s), fit a line, and
extrapolate to 100 users.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.evalkit.experiments.fig5 import OUTLIER_THRESHOLD
from repro.evalkit.harness import SessionConfig, run_sudoku_session
from repro.evalkit.stats import linear_fit, mean_excluding
from repro.workloads.activity import ActivityModel


@dataclass
class Fig6Result:
    user_counts: list[int]
    active_means: list[float] = field(default_factory=list)
    idle_means: list[float] = field(default_factory=list)
    slope: float = 0.0  # seconds per additional user (active series)
    intercept: float = 0.0
    extrapolated_100_users: float = 0.0
    max_activity_gap: float = 0.0  # biggest |active - idle| across counts


def run(
    user_counts: list[int] | None = None,
    duration: float = 300.0,
    seed: int = 7,
) -> Fig6Result:
    """Run both series and fit the scaling line."""
    counts = user_counts if user_counts is not None else list(range(2, 9))
    result = Fig6Result(user_counts=counts)
    for users in counts:
        for active in (True, False):
            activity = ActivityModel() if active else ActivityModel.idle()
            outcome = run_sudoku_session(
                SessionConfig(
                    users=users,
                    duration=duration,
                    seed=seed + users,
                    activity=activity,
                )
            )
            mean = mean_excluding(outcome.sync_durations, OUTLIER_THRESHOLD)
            (result.active_means if active else result.idle_means).append(mean)
    result.slope, result.intercept = linear_fit(
        [float(c) for c in counts], result.active_means
    )
    result.extrapolated_100_users = result.slope * 100 + result.intercept
    result.max_activity_gap = max(
        abs(a - i) for a, i in zip(result.active_means, result.idle_means)
    )
    return result


def format_report(result: Fig6Result) -> str:
    lines = [
        "Figure 6 — average time to synchronize vs. number of users",
        f"  {'users':>5} | {'active (ms)':>12} | {'idle (ms)':>10}",
        "  " + "-" * 34,
    ]
    for users, active, idle in zip(
        result.user_counts, result.active_means, result.idle_means
    ):
        lines.append(f"  {users:>5} | {active * 1000:>12.1f} | {idle * 1000:>10.1f}")
    lines += [
        "",
        f"  linear fit (active): {result.slope * 1000:.1f} ms/user + "
        f"{result.intercept * 1000:.1f} ms",
        f"  extrapolated 100 users: {result.extrapolated_100_users:.2f} s"
        "   (paper: 'within 3 seconds')",
        f"  max activity-vs-idle gap: {result.max_activity_gap * 1000:.1f} ms"
        "   (paper: activity 'does not affect ... by much')",
    ]
    return "\n".join(lines)
