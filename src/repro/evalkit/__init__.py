"""Evaluation kit: the experiments behind every figure in the paper.

One module per experiment (see DESIGN.md's per-experiment index):

=========  =====================================  ==========================
Paper      Experiment                             Module
=========  =====================================  ==========================
Figure 5   Sync-time distribution, 8 users, 1 h   ``experiments.fig5``
Figure 6   Sync time vs #users, active/idle       ``experiments.fig6``
Figure 7   Conflicts vs #users                    ``experiments.fig7``
§7 text    Failure & automatic recovery           ``experiments.recovery``
§4 text    At-most-three executions               ``experiments.reexec``
§1/§8      Responsiveness ablation vs baselines   ``experiments.responsiveness``
§6 text    Spec# assertion classification         ``experiments.specreport``
§6 text    Application sizes (500-700 LoC)        ``experiments.appsizes``
=========  =====================================  ==========================

Each experiment module exposes ``run(config) -> Result`` returning a
dataclass with the measured series, plus ``format_report(result)``
printing the same rows the paper's figure shows.  The pytest-benchmark
targets in ``benchmarks/`` call these runners.
"""

from repro.evalkit.stats import (
    Histogram,
    linear_fit,
    mean_excluding,
    percentile,
)

__all__ = ["Histogram", "linear_fit", "mean_excluding", "percentile"]
