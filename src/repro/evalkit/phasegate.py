"""CI regression gate over the round phase profile.

``phase-budgets.json`` (committed at the repo root) holds wall-clock
ceilings for each round phase's mean span cost and for the hot-path
microbenchmarks ``roundprof`` measures.  The budgets carry an order of
magnitude of headroom over a developer-laptop baseline — the gate is
not a precision benchmark, it exists to catch *structural* regressions
(an accidental per-peer re-encode, a dict-copy sneaking back into the
decode path, a quadratic refresh) that blow past any reasonable
constant factor, while staying robust to noisy shared CI runners.

Usage (what the bench-smoke CI job runs)::

    python -m repro.cli roundprof --quick        # writes BENCH_phases.json
    python -m repro.evalkit.phasegate            # compares, exit 1 on breach

Re-baselining after an intentional change: regenerate
``BENCH_phases.json``, eyeball the new means, and commit ceilings of
roughly 10x the observed values (see ``docs/PROFILING.md``).
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_BENCH = "BENCH_phases.json"
DEFAULT_BUDGETS = "phase-budgets.json"


def check(bench: dict, budgets: dict) -> list[str]:
    """Every budget the profile breaches, as human-readable strings."""
    violations: list[str] = []
    phases = bench.get("phases", {})
    for phase, ceiling in sorted(budgets.get("phase_mean_us", {}).items()):
        stats = phases.get(phase)
        if stats is None or not stats.get("calls"):
            violations.append(
                f"phase {phase}: no samples in the profile (hook removed?)"
            )
            continue
        actual = stats.get("mean_us", 0.0)
        if actual > ceiling:
            violations.append(
                f"phase {phase}: mean {actual:.1f}us/span exceeds "
                f"budget {ceiling:.1f}us"
            )
    micro = bench.get("micro", {})
    for name, ceiling in sorted(budgets.get("micro_us", {}).items()):
        actual = micro.get(name)
        if actual is None:
            violations.append(f"micro {name}: missing from the profile")
        elif actual > ceiling:
            violations.append(
                f"micro {name}: {actual:.1f}us/call exceeds budget "
                f"{ceiling:.1f}us"
            )
    min_speedup = budgets.get("min_fanout_speedup")
    if min_speedup is not None:
        actual = micro.get("fanout_speedup", 0.0)
        if actual < min_speedup:
            violations.append(
                f"fanout encode-once speedup {actual:.2f}x is below the "
                f"required {min_speedup:.2f}x (per-peer re-encode crept back?)"
            )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="phasegate",
        description="Fail if BENCH_phases.json breaches phase-budgets.json.",
    )
    parser.add_argument("--bench", default=DEFAULT_BENCH)
    parser.add_argument("--budgets", default=DEFAULT_BUDGETS)
    args = parser.parse_args(argv)
    with open(args.bench, encoding="utf-8") as handle:
        bench = json.load(handle)
    with open(args.budgets, encoding="utf-8") as handle:
        budgets = json.load(handle)
    violations = check(bench, budgets)
    if violations:
        print(f"phasegate: {len(violations)} budget violation(s):")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    checked = len(budgets.get("phase_mean_us", {})) + len(
        budgets.get("micro_us", {})
    )
    print(f"phasegate: ok ({checked} budgets checked)")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
