"""One machine of the distributed system.

A :class:`GuesstimateNode` glues everything together for a single
machine: the model state (λ, C, sc, P, sg), the API facade handed to
application code, the synchronizer, the issue windows, membership, and
metrics.  It implements the facade's :class:`~repro.core.guesstimate.Host`
protocol (time, windows, deferral).
"""

from __future__ import annotations

from typing import Callable

from repro.core.guesstimate import Guesstimate, Host
from repro.core.machine import MachineModel, PendingEntry
from repro.core.readlock import ReadLockTable
from repro.core.serialization import decode_state
from repro.errors import NodeCrashedError
from repro.net.mesh import Envelope, Mesh, MeshPair
from repro.runtime import messages as msg
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import NodeMetrics, SystemMetrics
from repro.runtime.synchronizer import MasterControl, Synchronizer
from repro.runtime.tracing import Tracer
from repro.sim.scheduler import Scheduler


class GuesstimateNode(Host):
    """A machine: model + facade + synchronizer (+ master role)."""

    STATE_ACTIVE = "active"
    STATE_JOINING = "joining"
    STATE_OFFLINE = "offline"
    STATE_STOPPED = "stopped"

    def __init__(
        self,
        machine_id: str,
        scheduler: Scheduler,
        meshes: MeshPair,
        config: RuntimeConfig,
        metrics_system: SystemMetrics,
        tracer: Tracer | None = None,
        is_master: bool = False,
    ):
        self.machine_id = machine_id
        self.scheduler = scheduler
        self.meshes = meshes
        self.config = config
        self.metrics_system = metrics_system
        self.tracer = tracer if tracer is not None else Tracer(enabled=config.tracing)

        self.model = MachineModel(machine_id)
        self.read_locks = ReadLockTable()
        self.api = Guesstimate(self.model, host=self)
        self.api.read_locks = self.read_locks
        self.synchronizer = Synchronizer(self)
        self.master: MasterControl | None = MasterControl(self) if is_master else None

        self.state = GuesstimateNode.STATE_STOPPED
        self.completed_offset = 0  # |C| at our last (re)join; aligns comparisons
        self._window: str | None = None
        self._window_depth = 0
        self._deferred: list[tuple[float, Callable[[], None]]] = []
        self.on_welcome: Callable[[], None] | None = None
        #: unique id -> callbacks fired after remote ops change it
        self._remote_callbacks: dict[str, list[Callable[[str], None]]] = {}

    # -- convenience accessors --------------------------------------------------

    @property
    def signals_mesh(self) -> Mesh:
        return self.meshes.signals

    @property
    def ops_mesh(self) -> Mesh:
        return self.meshes.operations

    @property
    def is_master(self) -> bool:
        return self.master is not None

    @property
    def metrics(self) -> NodeMetrics:
        return self.metrics_system.node(self.machine_id)

    def trace(self, kind: str, **detail) -> None:
        self.tracer.emit(self.scheduler.now(), self.machine_id, kind, **detail)

    # -- lifecycle ----------------------------------------------------------------

    def start(self, founding: bool = True) -> None:
        """Join the meshes and enter the system.

        Founding members start active immediately (they all begin from
        the same empty state); later arrivals start in the joining
        state and announce themselves with Hello, exactly as in the
        paper's "entering and leaving" protocol.
        """
        self.meshes.join(self.machine_id, self._on_signal, self._on_op)
        if founding:
            self.state = GuesstimateNode.STATE_ACTIVE
        else:
            self.state = GuesstimateNode.STATE_JOINING
            self._announce()
        self.trace(Tracer.MEMBERSHIP, state=self.state)
        if self.config.failover_timeout is not None and not self.is_master:
            self._arm_failover_check()

    def _announce(self) -> None:
        """Broadcast Hello, retrying until welcomed (Hello can be lost)."""
        if self.state != GuesstimateNode.STATE_JOINING:
            return
        self.signals_mesh.broadcast(self.machine_id, msg.Hello(self.machine_id))
        self.scheduler.call_later(self.config.stall_timeout, self._announce)

    def leave(self) -> None:
        """Gracefully exit the system."""
        self.signals_mesh.broadcast(self.machine_id, msg.Goodbye(self.machine_id))
        self.meshes.leave(self.machine_id)
        self.state = GuesstimateNode.STATE_STOPPED

    def halt(self) -> None:
        """Simulate a hard process kill: no Goodbye, no cleanup.

        Unlike a network crash (fault injector), a halted node stops
        doing local work too — the scenario the master-failover
        extension exists for.
        """
        if self.meshes.signals.is_member(self.machine_id):
            self.meshes.leave(self.machine_id)
        if self.master is not None:
            self.master.stop()
        self.state = GuesstimateNode.STATE_STOPPED
        self.trace(Tracer.MEMBERSHIP, state="halted")

    def go_offline(self) -> None:
        """Disconnect while continuing to work locally (section 9).

        The paper lists off-line updates as future work; this extension
        implements the natural semantics: the machine leaves the meshes
        (the master drops it from synchronizations), but the user keeps
        issuing operations against the guesstimated state.  They queue
        in P and commit after :meth:`come_online` — with, as the paper
        warns, a larger window for discrepancies and conflicts.
        """
        if self.state != GuesstimateNode.STATE_ACTIVE:
            raise NodeCrashedError(self.machine_id)
        if (
            self.synchronizer.in_flight
            or self.synchronizer.pending_completions
            or self._window is not None
        ):
            from repro.errors import RuntimeFailure

            raise RuntimeFailure(
                "cannot go offline mid-synchronization (operations are in "
                "flight); retry after the round completes"
            )
        self.signals_mesh.broadcast(self.machine_id, msg.Goodbye(self.machine_id))
        self.meshes.leave(self.machine_id)
        self.state = GuesstimateNode.STATE_OFFLINE
        self.trace(Tracer.MEMBERSHIP, state="offline", pending=len(self.model.pending))

    def come_online(self) -> None:
        """Re-enter the system, keeping operations issued while offline.

        The node rejoins through the ordinary Hello/Welcome path; the
        welcome snapshot replaces the committed state, after which the
        still-pending offline operations are re-applied to restore the
        ``[P](sc) = sg`` invariant and flushed in the next round.
        """
        if self.state != GuesstimateNode.STATE_OFFLINE:
            raise NodeCrashedError(self.machine_id)
        # Stale round bookkeeping from before the disconnect is useless
        # (those rounds completed without us); the pending list survives.
        self.synchronizer.rounds.clear()
        self.synchronizer.op_buffer.clear()
        self.synchronizer.last_flush.clear()
        self.meshes.join(self.machine_id, self._on_signal, self._on_op)
        self.state = GuesstimateNode.STATE_JOINING
        self.synchronizer.last_master_signal = self.scheduler.now()
        self._announce()

    def restart(self) -> None:
        """Shut down the application instance and re-enter the system.

        Triggered by the master's Restart signal after a failed
        recovery.  All local state is discarded; the machine re-enters
        through the Hello/Welcome snapshot path and resumes in a
        consistent state.
        """
        self.metrics.restarts += 1
        self.trace(Tracer.RECOVERY, action="restart")
        self.synchronizer.reset()
        # Operation numbering must survive the restart: reusing keys
        # would collide with this machine's already-committed history.
        op_counter = self.model._op_counter
        self.model = MachineModel(self.machine_id)
        self.model._op_counter = op_counter
        self.api = Guesstimate(self.model, host=self)
        self.api.read_locks = self.read_locks
        self._window = None
        self._window_depth = 0
        self._deferred.clear()
        self._remote_callbacks.clear()  # subscriptions died with the app
        self.state = GuesstimateNode.STATE_JOINING
        self._announce()

    def load_welcome(self, welcome: msg.Welcome) -> None:
        """Initialize state from the master's snapshot and go active."""
        if self.state != GuesstimateNode.STATE_JOINING:
            if self.state == GuesstimateNode.STATE_ACTIVE:
                # Duplicate Welcome: our earlier ack was lost; re-ack so
                # the master stops re-welcoming us.
                self.signals_mesh.send(
                    self.machine_id,
                    welcome.master_id,
                    msg.WelcomeAck(self.machine_id),
                )
            return
        for unique_id, (type_name, state) in welcome.snapshot.items():
            obj = decode_state({"type": type_name, "state": state})
            if self.model.committed.has(unique_id):
                self.model.committed.get(unique_id).copy_from(obj)
            else:
                self.model.committed.adopt(unique_id, obj)
        # Any locally-held history predates the snapshot; from here on
        # this machine holds the global suffix starting at the offset.
        self.model.completed.clear()
        self.model.guess.refresh_from(self.model.committed)
        # Operations issued while offline are still pending: re-apply
        # them to the refreshed guesstimate ([P](sc) = sg) so they can
        # flush in the next round.
        for entry in self.model.pending:
            entry.op.execute(self.model.guess)
            entry.executions += 1
            self.metrics.record_execution(entry.key)
        self.completed_offset = welcome.completed_count
        self.state = GuesstimateNode.STATE_ACTIVE
        self.signals_mesh.send(
            self.machine_id, welcome.master_id, msg.WelcomeAck(self.machine_id)
        )
        self.trace(Tracer.MEMBERSHIP, state="active", snapshot=len(welcome.snapshot))
        self._drain_deferred()
        if self.on_welcome is not None:
            self.on_welcome()

    # -- Host protocol (what the facade needs) ---------------------------------------

    def now(self) -> float:
        return self.scheduler.now()

    def active_window(self) -> str | None:
        if self.state == GuesstimateNode.STATE_JOINING:
            return "joining"
        if self.state == GuesstimateNode.STATE_STOPPED:
            raise NodeCrashedError(self.machine_id)
        # Offline nodes may issue freely — that is the whole point of
        # the off-line updates extension.
        return self._window

    def notify_issued(self, entry: PendingEntry) -> None:
        self.metrics.ops_issued += 1
        self.metrics.record_execution(entry.key)
        self.trace(Tracer.ISSUE, key=str(entry.key), op=entry.op.describe())

    def notify_rejected(self, op) -> None:
        self.metrics.ops_rejected_at_issue += 1
        self.trace(Tracer.ISSUE_REJECTED, op=op.describe())

    def defer(self, fn: Callable[[], None]) -> None:
        self.metrics.deferred_issues += 1
        self._deferred.append((self.scheduler.now(), fn))

    def register_remote_callback(
        self, unique_id: str, callback: Callable[[str], None]
    ) -> Callable[[], None]:
        callbacks = self._remote_callbacks.setdefault(unique_id, [])
        callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                callbacks.remove(callback)
            except ValueError:  # pragma: no cover - double unsubscribe
                pass

        return unsubscribe

    def fire_remote_updates(self, touched: set[str]) -> None:
        """Run remote-update callbacks after a guess refresh."""
        for unique_id in sorted(touched):
            for callback in list(self._remote_callbacks.get(unique_id, ())):
                callback(unique_id)

    # -- windows -----------------------------------------------------------------------

    def enter_window(self, name: str) -> None:
        self._window = name
        self._window_depth += 1

    def exit_window(self, name: str) -> None:
        self._window_depth = max(0, self._window_depth - 1)
        if self._window_depth == 0:
            self._window = None
            self._drain_deferred()

    def _drain_deferred(self) -> None:
        if self.active_window() is not None:
            return
        pending = self._deferred
        self._deferred = []
        now = self.scheduler.now()
        for deferred_at, fn in pending:
            self.metrics.deferral_delay_total += now - deferred_at
            fn()
            if self.active_window() is not None:  # pragma: no cover - defensive
                break

    # -- mesh handlers -------------------------------------------------------------------

    def broadcast_signal(self, payload: object) -> None:
        """Broadcast on the signals mesh and dispatch to ourselves.

        The mesh delivers only to *other* members; protocol logic wants
        uniform handling, so we self-dispatch synchronously (zero
        latency to self).
        """
        self.signals_mesh.broadcast(self.machine_id, payload)
        self._dispatch_signal(payload)

    def _on_signal(self, envelope: Envelope) -> None:
        self._dispatch_signal(envelope.payload)

    def _dispatch_signal(self, payload: object) -> None:
        if self.state == GuesstimateNode.STATE_STOPPED:
            return
        if self.master is not None:
            self.master.handle_signal(payload)
        self.synchronizer.handle_signal(payload)

    def _on_op(self, envelope: Envelope) -> None:
        if self.state == GuesstimateNode.STATE_STOPPED:
            return
        if isinstance(envelope.payload, msg.OpMessage):
            self.synchronizer.handle_op(envelope.payload)

    # -- master failover (section-9 extension) ----------------------------------------

    def _arm_failover_check(self) -> None:
        timeout = self.config.failover_timeout
        assert timeout is not None
        self.scheduler.call_later(timeout / 2, self._failover_check)

    def _failover_check(self) -> None:
        """Promote this node to master if the master has gone silent.

        The paper's future-work proposal: "designating a new machine as
        master if no synchronization messages are received for a
        threshold duration."  The lexicographically-smallest surviving
        slave (per the last announced order) takes over, resuming round
        numbering past anything previously seen.
        """
        if self.master is not None or self.state == GuesstimateNode.STATE_STOPPED:
            return
        timeout = self.config.failover_timeout
        assert timeout is not None
        sync = self.synchronizer
        silent_for = self.scheduler.now() - sync.last_master_signal
        if (
            self.state == GuesstimateNode.STATE_ACTIVE
            and silent_for > timeout
            and sync.last_order
        ):
            old_master = sync.last_order[0]
            survivors = [
                machine_id
                for machine_id in sync.last_order
                if machine_id != old_master
            ]
            if survivors and survivors[0] == self.machine_id:
                self._promote_to_master(survivors)
                return
        self._arm_failover_check()

    def _promote_to_master(self, participants: list[str]) -> None:
        self.trace(Tracer.RECOVERY, action="failover", participants=len(participants))
        self.master = MasterControl(self)
        self.master.participants = list(participants)
        self.master.round_counter = self.synchronizer.last_round_seen + 1
        self.master.start(0.0)

    # -- introspection -------------------------------------------------------------------

    def quiesced(self) -> bool:
        """True when nothing is pending locally or in flight."""
        return (
            not self.model.pending
            and not self.synchronizer.in_flight
            and not self.synchronizer.pending_completions
            and self._window is None
            and not self._deferred
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "master" if self.is_master else "slave"
        return f"<GuesstimateNode {self.machine_id} {role} {self.state}>"
