"""One machine of the distributed system.

A :class:`GuesstimateNode` glues everything together for a single
machine: the model state (λ, C, sc, P, sg), the API facade handed to
application code, the synchronizer, the issue windows, membership, and
metrics.  It implements the facade's :class:`~repro.core.guesstimate.Host`
protocol (time, windows, deferral).
"""

from __future__ import annotations

from typing import Callable

from repro.core.guesstimate import Guesstimate, Host
from repro.core.machine import CompletedEntry, MachineModel, PendingEntry
from repro.core.operations import OpKey
from repro.core.readlock import ReadLockTable
from repro.core.serialization import decode_op, decode_state
from repro.errors import NodeCrashedError, RuntimeFailure
from repro.net.interface import BroadcastChannel, Envelope
from repro.runtime import messages as msg
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import NodeMetrics, SystemMetrics
from repro.runtime.profiling import NULL_PROFILER, PhaseProfiler
from repro.runtime.synchronizer import MasterControl, Synchronizer
from repro.runtime.tracing import Tracer
from repro.sim.scheduler import Scheduler
from repro.storage.store import CommitRecord, RecoveredState, build_storage


class GuesstimateNode(Host):
    """A machine: model + facade + synchronizer (+ master role)."""

    STATE_ACTIVE = "active"
    STATE_JOINING = "joining"
    STATE_OFFLINE = "offline"
    STATE_STOPPED = "stopped"

    def __init__(
        self,
        machine_id: str,
        scheduler: Scheduler,
        meshes,  # MeshPair or NetworkMeshPair: .signals/.operations/join/leave
        config: RuntimeConfig,
        metrics_system: SystemMetrics,
        tracer: Tracer | None = None,
        is_master: bool = False,
    ):
        self.machine_id = machine_id
        self.scheduler = scheduler
        self.meshes = meshes
        self.config = config
        self.metrics_system = metrics_system
        #: this node's counters, resolved once — the synchronizer bumps
        #: them per message, so the per-access ``node()`` dict lookup
        #: the old property did is off the hot path now
        self.metrics: NodeMetrics = metrics_system.node(machine_id)
        #: wall-clock phase profiler; NULL_PROFILER (disabled) unless a
        #: harness attaches a live one (DistributedSystem.attach_profiler)
        self.profiler: PhaseProfiler = NULL_PROFILER
        self.tracer = tracer if tracer is not None else Tracer(enabled=config.tracing)

        self.model = MachineModel(machine_id)
        self.read_locks = ReadLockTable()
        self.api = Guesstimate(self.model, host=self)
        self.api.read_locks = self.read_locks
        self.synchronizer = Synchronizer(self)
        self.master: MasterControl | None = MasterControl(self) if is_master else None
        self.storage = build_storage(config, machine_id)
        self.metrics.storage = self.storage.stats
        #: global |C| this node holds from durable recovery, announced in
        #: Hello so the master can welcome it with a committed-op backlog
        #: instead of a full snapshot; None = no recovered state.
        self._recovered_count: int | None = None
        #: (machine_id, op_number) of the last recovered completed entry,
        #: announced alongside the count so the master can verify the
        #: recovered history really is a prefix of the global order.
        self._recovered_tail: tuple | None = None

        self.state = GuesstimateNode.STATE_STOPPED
        self.completed_offset = 0  # |C| at our last (re)join; aligns comparisons
        self._window: str | None = None
        self._window_depth = 0
        self._deferred: list[tuple[float, Callable[[], None]]] = []
        self.on_welcome: Callable[[], None] | None = None
        #: unique id -> callbacks fired after remote ops change it
        self._remote_callbacks: dict[str, list[Callable[[str], None]]] = {}

    # -- convenience accessors --------------------------------------------------

    @property
    def signals_mesh(self) -> BroadcastChannel:
        return self.meshes.signals

    @property
    def ops_mesh(self) -> BroadcastChannel:
        return self.meshes.operations

    @property
    def is_master(self) -> bool:
        return self.master is not None

    def trace(self, kind: str, **detail) -> None:
        self.tracer.emit(self.scheduler.now(), self.machine_id, kind, **detail)

    # -- durability --------------------------------------------------------------

    def log_committed_round(
        self, round_id: int, entries: list[tuple], completed_global: int
    ) -> None:
        """Append one committed round to the durable store (pre-ack) and
        take a periodic snapshot if the configured interval elapsed."""
        if not entries:
            return  # empty heartbeat rounds change nothing worth replaying
        self.storage.append_commit(
            CommitRecord(round_id, tuple(entries), completed_global)
        )
        if self.storage.maybe_snapshot(
            self.model.committed.snapshot_states, completed_global
        ):
            self.trace(Tracer.STORAGE, action="snapshot", completed=completed_global)

    # -- lifecycle ----------------------------------------------------------------

    def start(self, founding: bool = True) -> None:
        """Join the meshes and enter the system.

        Founding members start active immediately (they all begin from
        the same empty state); later arrivals start in the joining
        state and announce themselves with Hello, exactly as in the
        paper's "entering and leaving" protocol.
        """
        self.meshes.join(self.machine_id, self._on_signal, self._on_op)
        if founding:
            self.state = GuesstimateNode.STATE_ACTIVE
        else:
            self.state = GuesstimateNode.STATE_JOINING
            self._announce()
        self.trace(Tracer.MEMBERSHIP, state=self.state)
        if self.config.failover_timeout is not None and not self.is_master:
            self._arm_failover_check()

    def _announce(self) -> None:
        """Broadcast Hello, retrying until welcomed (Hello can be lost)."""
        if self.state != GuesstimateNode.STATE_JOINING:
            return
        self.signals_mesh.broadcast(
            self.machine_id,
            msg.Hello(
                self.machine_id, self._recovered_count, self._recovered_tail
            ),
        )
        self.scheduler.call_later(self.config.stall_timeout, self._announce)

    def leave(self) -> None:
        """Gracefully exit the system."""
        self.signals_mesh.broadcast(self.machine_id, msg.Goodbye(self.machine_id))
        self.meshes.leave(self.machine_id)
        self.storage.close()
        self.state = GuesstimateNode.STATE_STOPPED

    def halt(self) -> None:
        """Simulate a hard process kill: no Goodbye, no cleanup.

        Unlike a network crash (fault injector), a halted node stops
        doing local work too — the scenario the master-failover
        extension exists for.  The durable store is released (its
        on-disk state is whatever the fsync policy made stable);
        :meth:`recover_and_rejoin` rebuilds from it.
        """
        if self.meshes.signals.is_member(self.machine_id):
            self.meshes.leave(self.machine_id)
        if self.master is not None:
            self.master.stop(hard=True)
        self.storage.close()
        self.state = GuesstimateNode.STATE_STOPPED
        self.trace(Tracer.MEMBERSHIP, state="halted")

    def go_offline(self) -> None:
        """Disconnect while continuing to work locally (section 9).

        The paper lists off-line updates as future work; this extension
        implements the natural semantics: the machine leaves the meshes
        (the master drops it from synchronizations), but the user keeps
        issuing operations against the guesstimated state.  They queue
        in P and commit after :meth:`come_online` — with, as the paper
        warns, a larger window for discrepancies and conflicts.
        """
        if self.state != GuesstimateNode.STATE_ACTIVE:
            raise NodeCrashedError(self.machine_id)
        if (
            self.synchronizer.in_flight
            or self.synchronizer.pending_completions
            or self._window is not None
        ):
            from repro.errors import RuntimeFailure

            raise RuntimeFailure(
                "cannot go offline mid-synchronization (operations are in "
                "flight); retry after the round completes"
            )
        self.signals_mesh.broadcast(self.machine_id, msg.Goodbye(self.machine_id))
        self.meshes.leave(self.machine_id)
        self.state = GuesstimateNode.STATE_OFFLINE
        self.trace(Tracer.MEMBERSHIP, state="offline", pending=len(self.model.pending))

    def come_online(self) -> None:
        """Re-enter the system, keeping operations issued while offline.

        The node rejoins through the ordinary Hello/Welcome path; the
        welcome snapshot replaces the committed state, after which the
        still-pending offline operations are re-applied to restore the
        ``[P](sc) = sg`` invariant and flushed in the next round.
        """
        if self.state != GuesstimateNode.STATE_OFFLINE:
            raise NodeCrashedError(self.machine_id)
        # Stale round bookkeeping from before the disconnect is useless
        # (those rounds completed without us); the pending list survives.
        self.synchronizer.rounds.clear()
        self.synchronizer.op_buffer.clear()
        self.synchronizer.last_flush.clear()
        self.meshes.join(self.machine_id, self._on_signal, self._on_op)
        self.state = GuesstimateNode.STATE_JOINING
        self.synchronizer.last_master_signal = self.scheduler.now()
        self._announce()

    def restart(self) -> None:
        """Shut down the application instance and re-enter the system.

        Triggered by the master's Restart signal after a failed
        recovery (and by :meth:`recover_and_rejoin` after a hard
        crash).  With durability off this discards all local state and
        re-enters through the Hello/Welcome snapshot path.  With a
        durable store, committed state is first rebuilt from
        ``snapshot + WAL replay``; the node then announces how much of
        the global completed sequence it already holds and the master
        welcomes it with just the committed backlog it missed.
        """
        self.metrics.restarts += 1
        self.trace(Tracer.RECOVERY, action="restart")
        # A suspect WAL (speculatively streamed blocks of a round the
        # cluster committed differently) must not be announced as a
        # recovered prefix: rejoin through the full-snapshot Welcome,
        # which rebases the store.
        wal_suspect = self.synchronizer.wal_suspect
        self.synchronizer.wal_suspect = False
        self.synchronizer.reset()
        # Operation numbering must survive the restart: reusing keys
        # would collide with this machine's already-committed history.
        op_counter = self.model._op_counter
        if wal_suspect:
            self.trace(Tracer.STORAGE, action="suspect_wal_discarded")
            recovered = None
        else:
            recovered = self.storage.recover()
        if recovered is not None:
            self.model = self._rebuild_from_storage(recovered)
            self.completed_offset = recovered.base_offset
            self._recovered_count = (
                recovered.base_offset + self.model.completed_count
            )
            if self.model.completed:
                tail_key = self.model.completed[-1].key
                self._recovered_tail = (tail_key.machine_id, tail_key.op_number)
            else:
                self._recovered_tail = None
            self.metrics.crash_recoveries += 1
            self.metrics.recovery_replay_entries = sum(
                len(commit.entries) for commit in recovered.commits
            )
            self.trace(
                Tracer.STORAGE,
                action="recover",
                replayed_rounds=recovered.replay_length,
                completed=self._recovered_count,
            )
        else:
            self.model = MachineModel(self.machine_id)
            self._recovered_count = None
            self._recovered_tail = None
        self.model._op_counter = max(op_counter, self.model._op_counter)
        self.api = Guesstimate(self.model, host=self)
        self.api.read_locks = self.read_locks
        self._window = None
        self._window_depth = 0
        self._deferred.clear()
        self._remote_callbacks.clear()  # subscriptions died with the app
        self.state = GuesstimateNode.STATE_JOINING
        self._announce()

    def _rebuild_from_storage(self, recovered: RecoveredState) -> MachineModel:
        """Crash recovery: snapshot states + WAL-suffix replay → model.

        Rebuilds ``sc`` and the held suffix of ``C``.  The pending list
        ``P`` died with the process — only globally-ordered committed
        operations are logged — so the guesstimate equals the committed
        state and the ``[P](sc) = sg`` invariant holds trivially.
        """
        model = MachineModel(self.machine_id)
        for unique_id, (type_name, state) in recovered.states.items():
            model.committed.adopt(
                unique_id, decode_state({"type": type_name, "state": state})
            )
        max_own_op = 0
        for commit in recovered.commits:
            for machine_id, op_number, payload, result, committed_at in commit.entries:
                op = decode_op(payload)
                op.execute(model.committed)  # deterministic replay
                model.committed.mark_dirty(op.object_ids())
                model.record_completed(
                    CompletedEntry(OpKey(machine_id, op_number), op, result, committed_at)
                )
                if machine_id == self.machine_id:
                    max_own_op = max(max_own_op, op_number)
        model.guess.refresh_from(model.committed)
        model._op_counter = max_own_op
        return model

    def recover_and_rejoin(self) -> None:
        """Bring a hard-killed (halted) process back up.

        Re-joins the meshes and re-enters through :meth:`restart`.  The
        in-memory model is forgotten first — a real crashed process
        keeps nothing — so everything the node resumes with provably
        came from the durable store (or, failing that, the master's
        Welcome snapshot).
        """
        if self.state != GuesstimateNode.STATE_STOPPED:
            raise RuntimeFailure(
                "recover_and_rejoin is only valid on a halted node"
            )
        self.meshes.join(self.machine_id, self._on_signal, self._on_op)
        self.model = MachineModel(self.machine_id)
        self.restart()
        if self.config.failover_timeout is not None and not self.is_master:
            self._arm_failover_check()

    def load_welcome(self, welcome: msg.Welcome) -> None:
        """Initialize state from the master's Welcome and go active.

        Two shapes: the ordinary full-snapshot Welcome (committed state
        replaced wholesale), and the delta Welcome a crash-recovered
        node earns by announcing its durable position — the master
        ships only the committed operations the node missed, which are
        replayed on top of the recovered state so the local completed
        sequence survives the crash.
        """
        if self.state != GuesstimateNode.STATE_JOINING:
            if self.state == GuesstimateNode.STATE_ACTIVE:
                # Duplicate or superseding Welcome: our earlier ack was
                # lost, or it raced a round at the master and we must
                # catch up on commits our snapshot predates.
                self._load_superseding_welcome(welcome)
            return
        if welcome.backlog_from is not None:
            # Delta Welcome: only loadable when its backlog actually
            # covers our recovered position.  A stale one (built from a
            # previous Hello's count before our newest announcement
            # arrived) must be ignored, NOT treated as a snapshot
            # Welcome — its snapshot field is empty, and rebasing the
            # durable log to an empty snapshot silently destroys the
            # recovered history.  The _announce retry loop keeps
            # re-sending Hello, so a matching Welcome follows.
            if self._recovered_count is None:
                return
            skip = self._recovered_count - welcome.backlog_from
            if not 0 <= skip <= len(welcome.backlog):
                return
            self._load_welcome_backlog(welcome, skip)
        else:
            self._load_welcome_snapshot(welcome)
        self._recovered_count = None
        self._recovered_tail = None
        # A crash can wipe the op counter while the cluster commits our
        # last flush; resume numbering above everything ever committed.
        self.model._op_counter = max(self.model._op_counter, welcome.op_floor)
        # Operations issued while offline are still pending: re-apply
        # them to the refreshed guesstimate ([P](sc) = sg) so they can
        # flush in the next round.
        for entry in self.model.pending:
            entry.op.execute(self.model.guess)
            self.model.guess.mark_dirty(entry.op.object_ids())
            entry.executions += 1
            self.metrics.record_execution(entry.key)
        self.state = GuesstimateNode.STATE_ACTIVE
        self.signals_mesh.send(
            self.machine_id, welcome.master_id, msg.WelcomeAck(self.machine_id)
        )
        self.trace(
            Tracer.MEMBERSHIP,
            state="active",
            snapshot=len(welcome.snapshot),
            backlog=len(welcome.backlog),
        )
        self._drain_deferred()
        if self.on_welcome is not None:
            self.on_welcome()

    def _load_superseding_welcome(self, welcome: msg.Welcome) -> None:
        """A re-Welcome received while already active.

        If the master's count is ahead of ours, our WelcomeAck raced a
        round we were not part of: the master refused to admit us and
        re-welcomed with the commits we missed.  Catch up — by backlog
        replay when the Welcome extends our position, else by adopting
        the fresh snapshot — and re-ack; a Welcome at or behind our own
        position is a plain duplicate and only needs the re-ack.
        """
        local_total = self.completed_offset + self.model.completed_count
        if welcome.completed_count > local_total:
            if (
                welcome.backlog_from is not None
                and welcome.backlog_from > local_total
            ):
                # A delta Welcome whose backlog starts past our
                # position cannot be loaded (its snapshot is empty, so
                # the snapshot path would corrupt both the live offset
                # and the durable log).  Rejoin through recovery: the
                # fresh Hello announces our true position.
                self.restart()
                return
            if (
                welcome.backlog_from is not None
                and welcome.backlog_from <= local_total
            ):
                skip = local_total - welcome.backlog_from
                logged: list[tuple] = []
                for entry in welcome.backlog[skip:]:
                    machine_id, op_number, payload, result, committed_at = entry
                    op = decode_op(payload)
                    op.execute(self.model.committed)
                    self.model.committed.mark_dirty(op.object_ids())
                    self.model.record_completed(
                        CompletedEntry(
                            OpKey(machine_id, op_number), op, result, committed_at
                        )
                    )
                    logged.append(entry)
                if logged:
                    self.storage.append_commit(
                        CommitRecord(
                            -1,
                            tuple(logged),
                            self.completed_offset + self.model.completed_count,
                        )
                    )
            else:
                self._load_welcome_snapshot(welcome)
            self.model.guess.refresh_from(self.model.committed)
            for entry in self.model.pending:
                entry.op.execute(self.model.guess)
                self.model.guess.mark_dirty(entry.op.object_ids())
                entry.executions += 1
                self.metrics.record_execution(entry.key)
            self.trace(
                Tracer.MEMBERSHIP,
                action="catch_up_welcome",
                completed=welcome.completed_count,
            )
        self.model._op_counter = max(self.model._op_counter, welcome.op_floor)
        self.signals_mesh.send(
            self.machine_id, welcome.master_id, msg.WelcomeAck(self.machine_id)
        )

    def _load_welcome_snapshot(self, welcome: msg.Welcome) -> None:
        """The ordinary join: adopt the master's full state snapshot."""
        for unique_id, (type_name, state) in welcome.snapshot.items():
            obj = decode_state({"type": type_name, "state": state})
            if self.model.committed.has(unique_id):
                self.model.committed.get(unique_id).copy_from(obj)
                # copy_from bypasses the store; re-stamp so the version
                # bookkeeping and snapshot cache see the new state.
                self.model.committed.mark_dirty((unique_id,))
            else:
                self.model.committed.adopt(unique_id, obj)
        # Any locally-held history predates the snapshot; from here on
        # this machine holds the global suffix starting at the offset.
        self.model.completed.clear()
        self.model.guess.refresh_from(self.model.committed)
        self.completed_offset = welcome.completed_count
        # The durable log is superseded by the snapshot we just took.
        self.storage.rebase(dict(welcome.snapshot), welcome.completed_count)

    def _load_welcome_backlog(self, welcome: msg.Welcome, skip: int = 0) -> None:
        """Crash-recovery catch-up: replay only the missed commits.

        The recovered committed state plus this backlog is, by the
        global ordering, byte-identical to every survivor's ``sc`` —
        and unlike the snapshot path the node keeps its completed
        sequence, extended by the missed suffix.  ``skip`` drops
        leading backlog entries the recovered state already holds
        (a Welcome built from an older Hello's position overlaps).
        """
        logged: list[tuple] = []
        for machine_id, op_number, payload, result, committed_at in welcome.backlog[
            skip:
        ]:
            op = decode_op(payload)
            op.execute(self.model.committed)
            self.model.committed.mark_dirty(op.object_ids())
            self.model.record_completed(
                CompletedEntry(OpKey(machine_id, op_number), op, result, committed_at)
            )
            logged.append((machine_id, op_number, payload, result, committed_at))
        completed_global = self.completed_offset + self.model.completed_count
        if logged:
            # Catch-up batches are logged like a round (round_id -1
            # marks them) so recovery replays them in order too.
            self.storage.append_commit(
                CommitRecord(-1, tuple(logged), completed_global)
            )
        self.model.guess.refresh_from(self.model.committed)
        self.trace(
            Tracer.STORAGE, action="catch_up", backlog=len(welcome.backlog),
            completed=completed_global,
        )

    # -- Host protocol (what the facade needs) ---------------------------------------

    def now(self) -> float:
        return self.scheduler.now()

    def active_window(self) -> str | None:
        if self.state == GuesstimateNode.STATE_JOINING:
            return "joining"
        if self.state == GuesstimateNode.STATE_STOPPED:
            raise NodeCrashedError(self.machine_id)
        # Offline nodes may issue freely — that is the whole point of
        # the off-line updates extension.
        return self._window

    def notify_issued(self, entry: PendingEntry) -> None:
        self.metrics.ops_issued += 1
        self.metrics.record_execution(entry.key)
        self.trace(Tracer.ISSUE, key=str(entry.key), op=entry.op.describe())

    def notify_rejected(self, op) -> None:
        self.metrics.ops_rejected_at_issue += 1
        self.trace(Tracer.ISSUE_REJECTED, op=op.describe())

    def defer(self, fn: Callable[[], None]) -> None:
        self.metrics.deferred_issues += 1
        self._deferred.append((self.scheduler.now(), fn))

    def register_remote_callback(
        self, unique_id: str, callback: Callable[[str], None]
    ) -> Callable[[], None]:
        callbacks = self._remote_callbacks.setdefault(unique_id, [])
        callbacks.append(callback)

        def unsubscribe() -> None:
            try:
                callbacks.remove(callback)
            except ValueError:  # pragma: no cover - double unsubscribe
                pass

        return unsubscribe

    def fire_remote_updates(self, touched: set[str]) -> None:
        """Run remote-update callbacks after a guess refresh."""
        for unique_id in sorted(touched):
            for callback in list(self._remote_callbacks.get(unique_id, ())):
                callback(unique_id)

    # -- windows -----------------------------------------------------------------------

    def enter_window(self, name: str) -> None:
        self._window = name
        self._window_depth += 1

    def exit_window(self, name: str) -> None:
        self._window_depth = max(0, self._window_depth - 1)
        if self._window_depth == 0:
            self._window = None
            self._drain_deferred()

    def _drain_deferred(self) -> None:
        if self.active_window() is not None:
            return
        pending = self._deferred
        self._deferred = []
        now = self.scheduler.now()
        for deferred_at, fn in pending:
            self.metrics.deferral_delay_total += now - deferred_at
            fn()
            if self.active_window() is not None:  # pragma: no cover - defensive
                break

    # -- mesh handlers -------------------------------------------------------------------

    def broadcast_signal(self, payload: object) -> None:
        """Broadcast on the signals mesh and dispatch to ourselves.

        The mesh delivers only to *other* members; protocol logic wants
        uniform handling, so we self-dispatch synchronously (zero
        latency to self).
        """
        self.signals_mesh.broadcast(self.machine_id, payload)
        self._dispatch_signal(payload)

    def _on_signal(self, envelope: Envelope) -> None:
        self._dispatch_signal(envelope.payload)

    def _dispatch_signal(self, payload: object) -> None:
        if self.state == GuesstimateNode.STATE_STOPPED:
            return
        if self.master is not None:
            self.master.handle_signal(payload)
        self.synchronizer.handle_signal(payload)

    def _on_op(self, envelope: Envelope) -> None:
        if self.state == GuesstimateNode.STATE_STOPPED:
            return
        if isinstance(envelope.payload, (msg.OpMessage, msg.OpBatch)):
            self.synchronizer.handle_op(envelope.payload)

    # -- master failover (section-9 extension) ----------------------------------------

    def _arm_failover_check(self) -> None:
        timeout = self.config.failover_timeout
        assert timeout is not None
        self.scheduler.call_later(timeout / 2, self._failover_check)

    def _failover_check(self) -> None:
        """Promote this node to master if the master has gone silent.

        The paper's future-work proposal: "designating a new machine as
        master if no synchronization messages are received for a
        threshold duration."  The lexicographically-smallest surviving
        slave (per the last announced order) takes over, resuming round
        numbering past anything previously seen.
        """
        if self.master is not None or self.state == GuesstimateNode.STATE_STOPPED:
            return
        timeout = self.config.failover_timeout
        assert timeout is not None
        sync = self.synchronizer
        silent_for = self.scheduler.now() - sync.last_master_signal
        if (
            self.state == GuesstimateNode.STATE_ACTIVE
            and silent_for > timeout
            and sync.last_order
        ):
            old_master = sync.last_order[0]
            survivors = [
                machine_id
                for machine_id in sync.last_order
                if machine_id != old_master
            ]
            if survivors and survivors[0] == self.machine_id:
                self._promote_to_master(survivors)
                return
        self._arm_failover_check()

    def _promote_to_master(self, participants: list[str]) -> None:
        self.trace(Tracer.RECOVERY, action="failover", participants=len(participants))
        self.master = MasterControl(self)
        self.master.participants = list(participants)
        self.master.round_counter = self.synchronizer.last_round_seen + 1
        self.master.start(0.0)

    # -- introspection -------------------------------------------------------------------

    def quiesced(self) -> bool:
        """True when nothing is pending locally or in flight.

        Rounds the cluster still has in flight are accounted for by
        :func:`repro.runtime.system.cluster_quiesced` against the
        master's round table — a per-node check cannot tell a live
        round from one whose SyncComplete was lost to a fault.
        """
        return (
            not self.model.pending
            and not self.synchronizer.in_flight
            and not self.synchronizer.pending_completions
            and self._window is None
            and not self._deferred
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        role = "master" if self.is_master else "slave"
        return f"<GuesstimateNode {self.machine_id} {role} {self.state}>"
