"""System builder: wire machines, meshes and a master together.

:class:`DistributedSystem` is the top-level convenience used by tests,
examples and the evaluation kit.  It owns the scheduler (a
deterministic event loop by default), the two meshes, and the node
set, and provides the run/quiesce helpers the experiments are built on.
"""

from __future__ import annotations

from repro.core.guesstimate import Guesstimate
from repro.errors import ExperimentError, SimulationError
from repro.net.faults import FaultInjector, NoFaults
from repro.net.latency import LatencyModel, lan_profile
from repro.net.mesh import MeshPair
from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import SystemMetrics
from repro.runtime.node import GuesstimateNode
from repro.runtime.profiling import NULL_PROFILER, PhaseProfiler
from repro.runtime.tracing import Tracer
from repro.sim.eventloop import EventLoop
from repro.sim.rand import SeededSource

# ---------------------------------------------------------------------------
# Cluster-level correctness probes, shared by every deployment shape
# ---------------------------------------------------------------------------
#
# These operate on plain node collections so the in-process simulator
# (:class:`DistributedSystem`) and the socket-backed loopback harness
# (:class:`repro.transport.loopback.LoopbackCluster`) are judged by the
# byte-identical checks — the "verification twin" property the real
# transport is tested against.


def cluster_quiesced(master_node: GuesstimateNode, nodes) -> bool:
    """No pending work anywhere and no operations in flight.

    Empty in-flight rounds do not count as work: with pipelining the
    master can cycle op-less control rounds back to back without the
    pipeline ever going idle, yet every issued operation has long
    since committed everywhere.  A round carrying operations blocks
    quiescence whatever its stage — under speculative apply a slave
    pops its in-flight entries the moment it *locally* stream-commits
    its block, which can be while the master is still collecting, so
    neither per-node bookkeeping nor the published counts alone can be
    trusted: we also look for op payloads any live node has received
    for a round the master still tracks.
    """
    master = master_node.master
    if master is None:  # pragma: no cover
        return False
    for round_id, round_ in master.inflight.items():
        if sum(round_.counts.values()) > 0:
            return False
        for node in nodes:
            if node.state != GuesstimateNode.STATE_ACTIVE:
                continue
            state = node.synchronizer.rounds.get(round_id)
            if state is not None and (
                state.received or any(state.stream_done.values())
            ):
                return False
    if master.join_queue or master.awaiting_ack:
        return False
    if any(node.state == GuesstimateNode.STATE_JOINING for node in nodes):
        return False
    return all(
        node.quiesced()
        for node in nodes
        if node.state == GuesstimateNode.STATE_ACTIVE
    )


def committed_states_equal(nodes) -> bool:
    """Paper invariant: sc(i) = sc(j) for all active machine pairs."""
    nodes = list(nodes)
    if len(nodes) < 2:
        return True
    reference = nodes[0].model.committed
    return all(node.model.committed.state_equal(reference) for node in nodes[1:])


def completed_sequences_equal(nodes) -> bool:
    """Paper invariant: C(i) = C(j), aligned by join offsets.

    Machines that joined (or restarted) late only see the suffix of
    the global sequence after their snapshot point, so sequences
    are compared after dropping each machine's pre-join prefix.
    """
    nodes = list(nodes)
    if len(nodes) < 2:
        return True
    global_len = max(
        node.completed_offset + node.model.completed_count for node in nodes
    )

    def aligned(node: GuesstimateNode) -> list[tuple[str, int, bool]]:
        entries = node.model.completed
        return [
            (entry.key.machine_id, entry.key.op_number, entry.result)
            for entry in entries
        ]

    full_nodes = [node for node in nodes if node.completed_offset == 0]
    if len(full_nodes) >= 2:
        reference = aligned(full_nodes[0])
        if any(aligned(node) != reference for node in full_nodes[1:]):
            return False
    # Late joiners: their sequence must equal the common suffix.
    for node in nodes:
        if node.completed_offset == 0 or not full_nodes:
            continue
        reference = aligned(full_nodes[0])
        expected_len = global_len - node.completed_offset
        suffix = reference[len(reference) - expected_len :] if expected_len else []
        if aligned(node) != suffix:
            return False
    return True


def convergence_invariant_holds(nodes) -> bool:
    """Per-machine invariant [P](sc) = sg (valid at quiescent points)."""
    return all(node.model.check_convergence_invariant() for node in nodes)


def check_cluster_invariants(nodes) -> None:
    """Assert every paper invariant over the *active* nodes given;
    call at quiescent points only."""
    nodes = list(nodes)
    if not committed_states_equal(nodes):
        raise SimulationError("invariant violated: committed states differ")
    if not completed_sequences_equal(nodes):
        raise SimulationError("invariant violated: completed sequences differ")
    if not convergence_invariant_holds(nodes):
        raise SimulationError("invariant violated: [P](sc) != sg")


class DistributedSystem:
    """A complete simulated GUESSTIMATE deployment."""

    def __init__(
        self,
        n_machines: int,
        seed: int = 0,
        latency: LatencyModel | None = None,
        faults: FaultInjector | None = None,
        config: RuntimeConfig | None = None,
        machine_prefix: str = "m",
    ):
        if n_machines < 1:
            raise ExperimentError("need at least one machine")
        self.config = config if config is not None else RuntimeConfig()
        self.seeds = SeededSource(seed)
        self.loop = EventLoop()
        self.faults = faults if faults is not None else NoFaults()
        self.metrics = SystemMetrics()
        self.tracer = Tracer(enabled=self.config.tracing)
        self.machine_prefix = machine_prefix
        self._machine_counter = 0

        self.meshes = MeshPair(
            self.loop,
            latency=latency if latency is not None else lan_profile(),
            faults=self.faults,
            rng=self.seeds.stream("net"),
        )

        #: wall-clock phase profiler shared by every node; stays the
        #: disabled NULL_PROFILER unless attach_profiler() swaps it
        self.profiler = NULL_PROFILER

        self.nodes: dict[str, GuesstimateNode] = {}
        for index in range(n_machines):
            self._build_node(is_master=(index == 0), founding=True)

    # -- construction -----------------------------------------------------------

    def _next_machine_id(self) -> str:
        self._machine_counter += 1
        return f"{self.machine_prefix}{self._machine_counter:02d}"

    def _build_node(self, is_master: bool, founding: bool) -> GuesstimateNode:
        machine_id = self._next_machine_id()
        node = GuesstimateNode(
            machine_id=machine_id,
            scheduler=self.loop,
            meshes=self.meshes,
            config=self.config,
            metrics_system=self.metrics,
            tracer=self.tracer,
            is_master=is_master,
        )
        self.nodes[machine_id] = node
        node.profiler = self.profiler
        node.start(founding=founding)
        if founding and not is_master:
            # Founding members are participants from round one; late
            # joiners instead go through the Hello/Welcome handshake.
            self.master_node.master.participants.append(machine_id)  # type: ignore[union-attr]
        return node

    def start(self, first_sync_delay: float | None = None) -> None:
        """Begin periodic synchronization (master schedules round 1)."""
        self.master_node.master.start(first_sync_delay)  # type: ignore[union-attr]

    def attach_profiler(self, profiler: PhaseProfiler) -> PhaseProfiler:
        """Attribute every node's hot-path wall time to ``profiler``.

        Applies to current nodes and any machine added later; returns
        the profiler for chaining.  The ``roundprof`` experiment is the
        canonical caller.
        """
        self.profiler = profiler
        for node in self.nodes.values():
            node.profiler = profiler
        return profiler

    def add_machine(self) -> GuesstimateNode:
        """A new machine enters the running system (Hello/Welcome path)."""
        node = self._build_node(is_master=False, founding=False)
        return node

    # -- accessors ---------------------------------------------------------------

    @property
    def master_node(self) -> GuesstimateNode:
        for node in self.nodes.values():
            if node.is_master:
                return node
        raise SimulationError("system has no master")

    def node(self, machine_id: str) -> GuesstimateNode:
        return self.nodes[machine_id]

    def machine_ids(self) -> list[str]:
        return list(self.nodes)

    def api(self, machine_id: str) -> Guesstimate:
        """The GUESSTIMATE facade application code uses on that machine."""
        return self.nodes[machine_id].api

    def apis(self) -> list[Guesstimate]:
        return [node.api for node in self.nodes.values()]

    # -- running -------------------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        """Advance virtual time by ``seconds``."""
        self.loop.run_until(self.loop.now() + seconds)

    def run_until_quiesced(self, max_time: float = 300.0) -> float:
        """Run until every issued operation has committed everywhere.

        Returns the virtual time at quiescence.  Raises if the deadline
        passes first (which in tests means the protocol wedged).
        """
        deadline = self.loop.now() + max_time
        while self.loop.now() < deadline:
            if self.quiesced():
                return self.loop.now()
            next_time = self.loop.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.loop.step()
        if self.quiesced():
            return self.loop.now()
        raise SimulationError(
            f"system did not quiesce within {max_time}s of virtual time"
        )

    def stop(self) -> None:
        """Stop initiating new synchronization rounds."""
        master = self.master_node.master
        if master is not None:
            master.stop()

    # -- correctness probes ------------------------------------------------------------

    def quiesced(self) -> bool:
        """No pending work anywhere and no operations in flight."""
        return cluster_quiesced(self.master_node, self.nodes.values())

    def active_nodes(self) -> list[GuesstimateNode]:
        return [
            node
            for node in self.nodes.values()
            if node.state == GuesstimateNode.STATE_ACTIVE
        ]

    def committed_states_equal(self) -> bool:
        """Paper invariant: sc(i) = sc(j) for all machine pairs."""
        return committed_states_equal(self.active_nodes())

    def completed_sequences_equal(self) -> bool:
        """Paper invariant: C(i) = C(j), aligned by join offsets."""
        return completed_sequences_equal(self.active_nodes())

    def convergence_invariant_holds(self) -> bool:
        """Per-machine invariant [P](sc) = sg (valid at quiescent points)."""
        return convergence_invariant_holds(self.active_nodes())

    def check_all_invariants(self) -> None:
        """Assert every paper invariant; call at quiescent points only."""
        check_cluster_invariants(self.active_nodes())
