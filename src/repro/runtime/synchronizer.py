"""The three-stage synchronization protocol (paper section 4).

Every node runs a :class:`Synchronizer`; the designated master node
additionally runs a :class:`MasterControl` that initiates rounds,
grants flush turns, watches for stalls and drives recovery.

Stage 1 — **AddUpdatesToMesh**.  Two collection modes
(:class:`~repro.runtime.config.SyncConfig.collection`):

* ``sequential`` — the paper's protocol: the master grants each
  machine its turn (:class:`~repro.runtime.messages.YourTurn`) and
  round latency grows linearly with the participant count;
* ``concurrent`` — the master broadcasts one collect signal
  (``StartSync(parallel=True)``) and every participant flushes at
  once; arrivals are ordered deterministically by
  ``(machine_id, seq)``, so the committed sequence is identical.

In either mode a flush ships the pending list as size-capped
:class:`~repro.runtime.messages.OpBatch` frames (``batch_max_ops``
entries each) followed by a
:class:`~repro.runtime.messages.FlushDone`.  No operations may be
issued inside the flush window.

**Round pipelining** (``SyncConfig.pipeline_depth > 1``): the master
begins collecting round *k+1* while round *k*'s ``BeginApply``/acks
are still in flight, keeping at most ``pipeline_depth`` rounds open.
Every node applies rounds strictly in round-id order (a later round's
consolidated list waits until every earlier known round has been
applied), so pipelining changes latency, never the committed sequence.

Stage 2 — **ApplyUpdatesFromMesh**.  The master broadcasts
:class:`~repro.runtime.messages.BeginApply` with the authoritative
per-machine counts.  Each machine waits for every expected operation,
applies the consolidated list to its committed state in lexicographic
(machineID, opnumber) order, acknowledges, then refreshes the
guesstimated state (copy committed → guess, run completion routines,
re-apply the still-pending list).  No operations may be issued inside
the update window.

Stage 3 — **FlagCompletion**.  Once every acknowledgment is in, the
master broadcasts :class:`~repro.runtime.messages.SyncComplete` and
schedules the next round.

Fault recovery mirrors the paper: a stalled machine first gets its
signal resent (:class:`~repro.runtime.messages.YourTurn` or a unicast
``BeginApply``); if it still does not respond it is removed from the
current synchronization and told to :class:`~repro.runtime.messages.Restart`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.machine import CompletedEntry, PendingEntry
from repro.core.operations import OpKey
from repro.core.serialization import decode_op, encode_op
from repro.runtime import messages as msg
from repro.runtime.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.node import GuesstimateNode


def consolidated_order(node: "GuesstimateNode", round_state: "RoundState") -> list[OpKey]:
    """The global apply order: lexicographic (machineID, opnumber).

    Every machine must use this exact order or the committed sequences
    diverge — which is why the simulation fuzzer's self-test mutates
    this one function and asserts the invariant probes catch it.
    """
    assert round_state.counts is not None
    return sorted(
        key for key in round_state.received if key.machine_id in round_state.counts
    )


@dataclass
class RoundState:
    """One node's view of a synchronization round."""

    round_id: int
    order: tuple[str, ...]
    flushed: bool = False
    flush_count: int = 0
    counts: dict[str, int] | None = None
    received: dict[OpKey, dict] = field(default_factory=dict)
    dropped: set[str] = field(default_factory=set)
    applied: bool = False
    done: bool = False
    missing_timer: object | None = None
    #: per-round decode_op memo (resends/replays reuse decoded trees)
    decoded: dict[OpKey, object] = field(default_factory=dict)

    def received_count_from(self, machine_id: str) -> int:
        return sum(1 for key in self.received if key.machine_id == machine_id)

    def missing(self) -> dict[str, int]:
        """Per-machine number of operations still missing."""
        assert self.counts is not None
        gaps: dict[str, int] = {}
        for machine_id, expected in self.counts.items():
            have = self.received_count_from(machine_id)
            if have < expected:
                gaps[machine_id] = expected - have
        return gaps

    def complete(self) -> bool:
        if self.counts is None:
            return False
        return not self.missing()


class Synchronizer:
    """Per-node protocol logic (both master and slaves run this)."""

    def __init__(self, node: "GuesstimateNode"):
        self.node = node
        self.rounds: dict[int, RoundState] = {}
        self.op_buffer: dict[int, dict[OpKey, dict]] = {}
        self.last_flush: dict[int, dict[OpKey, dict]] = {}
        self.in_flight: dict[OpKey, PendingEntry] = {}
        self.pending_completions: list[tuple[PendingEntry, bool]] = []
        #: committed-store ids touched by applied rounds whose guess
        #: refresh has not run yet — the delta refresh drains this, so
        #: with pipelining round k's refresh also covers round k+1's
        #: already-applied ops (the naive full copy trivially did).
        self.refresh_backlog: set[str] = set()
        # Master-liveness tracking for the failover extension.
        self.last_master_signal: float = node.scheduler.now()
        self.last_order: tuple[str, ...] = ()
        self.last_round_seen: int = 0
        #: highest round id we have seen SyncComplete for — stale
        #: signals for rounds at or below this must not resurrect them
        self.last_done_round: int = 0
        #: set once this node learns it missed a committed round (the
        #: master removed it mid-round, or a SyncComplete arrived for a
        #: round it never applied).  From that moment its committed
        #: prefix has a hole: applying any later round would log a
        #: gapped history to the WAL, which recovery would then announce
        #: as a clean prefix.  All applies stop until restart/reset.
        self.evicted: bool = False

    # -- message dispatch -----------------------------------------------------

    def handle_signal(self, payload: object) -> None:
        """Dispatch one signals-channel message."""
        node = self.node
        if node.state == node.STATE_JOINING:
            # A joining machine is outside every round until the
            # master's Welcome admits it (the paper welcomes between
            # rounds).  Applying round signals on top of recovered
            # state here would race the Welcome the master builds from
            # our announced position and duplicate committed ops.
            if isinstance(payload, (msg.StartSync, msg.BeginApply, msg.SyncComplete)):
                self.last_master_signal = node.scheduler.now()  # master liveness
            if (
                isinstance(payload, msg.Welcome)
                and payload.machine_id == node.machine_id
            ):
                node.load_welcome(payload)
            return
        if isinstance(
            payload,
            (
                msg.StartSync,
                msg.YourTurn,
                msg.BeginApply,
                msg.SyncComplete,
                msg.ParticipantRemoved,
                msg.Welcome,
                msg.Restart,
            ),
        ):
            self.last_master_signal = node.scheduler.now()
            if isinstance(payload, (msg.StartSync, msg.BeginApply, msg.YourTurn)):
                self.last_order = payload.order
                self.last_round_seen = max(self.last_round_seen, payload.round_id)
            elif isinstance(payload, msg.SyncComplete):
                self.last_round_seen = max(self.last_round_seen, payload.round_id)
        if isinstance(payload, msg.StartSync):
            self._on_start_sync(payload)
        elif isinstance(payload, msg.YourTurn):
            if payload.machine_id == node.machine_id:
                self._on_your_turn(payload)
        elif isinstance(payload, msg.FlushDone):
            pass  # counts are taken from BeginApply; FlushDone drives the master
        elif isinstance(payload, msg.BeginApply):
            self._on_begin_apply(payload)
        elif isinstance(payload, msg.ResendOpsRequest):
            self._on_resend_request(payload)
        elif isinstance(payload, msg.SyncComplete):
            self._on_sync_complete(payload)
        elif isinstance(payload, msg.ParticipantRemoved):
            self._on_participant_removed(payload)
        elif isinstance(payload, msg.Restart):
            # A Restart that crosses paths with our own in-flight Hello
            # is stale: we already restarted and are waiting for the
            # Welcome, so restarting again would only repeat recovery.
            if (
                payload.machine_id == node.machine_id
                and node.state != node.STATE_JOINING
            ):
                node.restart()
        elif isinstance(payload, msg.Welcome):
            if payload.machine_id == node.machine_id:
                node.load_welcome(payload)

    def handle_op(self, payload: msg.OpMessage | msg.OpBatch) -> None:
        """Dispatch one operations-channel message (single op or batch)."""
        if self.node.state == self.node.STATE_JOINING:
            return  # not in any round until welcomed
        if isinstance(payload, msg.OpBatch):
            items = [
                (OpKey(payload.machine_id, op_number), op_payload)
                for op_number, op_payload in payload.ops
            ]
        else:
            items = [(OpKey(payload.machine_id, payload.op_number), payload.payload)]
        if payload.round_id <= self.last_done_round:
            return  # late frames for a round that already completed
        round_state = self.rounds.get(payload.round_id)
        if round_state is None:
            buffered = self.op_buffer.setdefault(payload.round_id, {})
            buffered.update(items)
            return
        if payload.machine_id in round_state.dropped:
            return
        round_state.received.update(items)
        self._try_apply(round_state)

    # -- stage 1: AddUpdatesToMesh ---------------------------------------------

    def _on_start_sync(self, start: msg.StartSync) -> None:
        if self.node.machine_id not in start.order:
            return
        round_state = self._ensure_round(start.round_id, start.order)
        if start.parallel and round_state is not None and not round_state.flushed:
            # Section-9 extension: everyone flushes at once.
            self._flush(round_state)

    def _on_your_turn(self, turn: msg.YourTurn) -> None:
        round_state = self._ensure_round(turn.round_id, turn.order)
        if round_state is None or round_state.done:
            return
        if round_state.flushed:
            # Our FlushDone was probably lost; resend it (recovery path).
            self.node.broadcast_signal(
                msg.FlushDone(turn.round_id, self.node.machine_id, round_state.flush_count)
            )
            return
        self._flush(round_state)

    def _flush(self, round_state: RoundState) -> None:
        node = self.node
        node.enter_window("flush")
        entries = node.model.take_pending()
        if len(entries) > node.config.max_ops_per_flush:  # pragma: no cover
            overflow = entries[node.config.max_ops_per_flush :]
            entries = entries[: node.config.max_ops_per_flush]
            node.model.requeue_pending_front(overflow)
        stash = self.last_flush.setdefault(round_state.round_id, {})
        encoded: list[tuple[int, dict]] = []
        for entry in entries:
            payload = encode_op(entry.op)
            stash[entry.key] = payload
            self.in_flight[entry.key] = entry
            round_state.received[entry.key] = payload  # self-delivery
            encoded.append((entry.key.op_number, payload))
        batches = self._broadcast_batches(round_state.round_id, encoded)
        round_state.flushed = True
        round_state.flush_count = len(entries)
        node.metrics.op_batches_sent += batches
        node.trace(
            Tracer.FLUSH,
            round=round_state.round_id,
            count=len(entries),
            batches=batches,
        )

        def end_flush() -> None:
            node.exit_window("flush")
            node.broadcast_signal(
                msg.FlushDone(round_state.round_id, node.machine_id, round_state.flush_count)
            )

        node.scheduler.call_later(node.config.flush_cpu(len(entries)), end_flush)

    def _broadcast_batches(
        self, round_id: int, encoded: list[tuple[int, dict]]
    ) -> int:
        """Broadcast ``(op_number, payload)`` pairs as OpBatch frames.

        Returns the number of frames sent.  An empty flush sends no
        data frames at all — FlushDone alone carries the zero count.
        """
        if not encoded:
            return 0
        node = self.node
        cap = node.config.sync.batch_max_ops
        chunks = [encoded[i : i + cap] for i in range(0, len(encoded), cap)]
        for seq, chunk in enumerate(chunks):
            node.ops_mesh.broadcast(
                node.machine_id,
                msg.OpBatch(
                    round_id, node.machine_id, seq, len(chunks), tuple(chunk)
                ),
            )
        return len(chunks)

    # -- stage 2: ApplyUpdatesFromMesh -------------------------------------------

    def _on_begin_apply(self, begin: msg.BeginApply) -> None:
        if self.node.machine_id not in begin.order:
            return
        round_state = self._ensure_round(begin.round_id, begin.order)
        if round_state is None or round_state.applied or round_state.done:
            return
        round_state.counts = dict(begin.counts)
        for dropped in round_state.dropped:
            round_state.counts.pop(dropped, None)
        self._try_apply(round_state)
        if not round_state.applied and round_state.missing_timer is None:
            round_state.missing_timer = self.node.scheduler.call_later(
                self.node.config.missing_ops_timeout,
                lambda: self._request_missing(round_state),
            )

    def _request_missing(self, round_state: RoundState) -> None:
        round_state.missing_timer = None
        if round_state.applied or round_state.done:
            return
        have = tuple(
            sorted((key.machine_id, key.op_number) for key in round_state.received)
        )
        self.node.trace(
            Tracer.RECOVERY, action="request_missing", round=round_state.round_id
        )
        self.node.signals_mesh.broadcast(
            self.node.machine_id,
            msg.ResendOpsRequest(round_state.round_id, self.node.machine_id, have),
        )
        # Keep asking until the gap closes or the master removes us.
        round_state.missing_timer = self.node.scheduler.call_later(
            self.node.config.missing_ops_timeout,
            lambda: self._request_missing(round_state),
        )

    def _on_resend_request(self, request: msg.ResendOpsRequest) -> None:
        if request.machine_id == self.node.machine_id:
            return
        # Serve from everything we hold for the round: our own flush
        # stash plus every frame we received.  The requester may be
        # missing ops whose issuer has since crashed or been removed —
        # any surviving holder must be able to close the gap.
        available: dict[OpKey, dict] = {}
        round_state = self.rounds.get(request.round_id)
        if round_state is not None:
            available.update(round_state.received)
        available.update(self.last_flush.get(request.round_id, {}))
        if not available:
            return
        have = {OpKey(machine, number) for machine, number in request.have}
        by_issuer: dict[str, list[tuple[int, dict]]] = {}
        for key, payload in available.items():
            if key not in have:
                by_issuer.setdefault(key.machine_id, []).append(
                    (key.op_number, payload)
                )
        # Resends ride the same batched framing as the original flush;
        # a frame carries one issuer's ops, so group by issuer.
        cap = self.node.config.sync.batch_max_ops
        for issuer in sorted(by_issuer):
            missing = sorted(by_issuer[issuer])
            chunks = [missing[i : i + cap] for i in range(0, len(missing), cap)]
            for seq, chunk in enumerate(chunks):
                self.node.ops_mesh.send(
                    self.node.machine_id,
                    request.machine_id,
                    msg.OpBatch(
                        request.round_id,
                        issuer,
                        seq,
                        len(chunks),
                        tuple(chunk),
                    ),
                )

    def _earlier_round_open(self, round_state: RoundState) -> bool:
        """True while an earlier known round has not been applied yet.

        With pipelining, round *k+1*'s consolidated list can be fully
        collected before round *k* finishes — committing it early would
        reorder C, so apply strictly in round-id order.
        """
        return any(
            round_id < round_state.round_id
            and not (state.applied or state.done)
            for round_id, state in self.rounds.items()
        )

    def _nudge_later_rounds(self, round_id: int) -> None:
        """Re-check rounds blocked behind ``round_id`` (in order)."""
        for later_id in sorted(self.rounds):
            if later_id > round_id:
                self._try_apply(self.rounds[later_id])
                break  # _apply recurses if further rounds are ready

    def _try_apply(self, round_state: RoundState) -> None:
        if self.evicted:
            return  # our committed prefix has a hole; wait for Restart
        if round_state.applied or round_state.done or not round_state.complete():
            return
        if self._earlier_round_open(round_state):
            return
        if round_state.missing_timer is not None:
            round_state.missing_timer.cancel()  # type: ignore[attr-defined]
            round_state.missing_timer = None
        self._apply(round_state)

    def _apply(self, round_state: RoundState) -> None:
        """Apply the consolidated list in lexicographic (machine, number) order."""
        node = self.node
        assert round_state.counts is not None
        keys = consolidated_order(node, round_state)
        object_ids: set[str] = set()
        decoded = []
        for key in keys:
            # Decode cache: our own in-flight ops still hold the
            # original operation tree (operations are immutable data),
            # and the per-round memo covers payloads a resend or replay
            # already decoded — only genuinely new payloads pay decode.
            entry = self.in_flight.get(key)
            if entry is not None:
                op = entry.op
                node.metrics.decode_cache_hits += 1
            else:
                op = round_state.decoded.get(key)
                if op is None:
                    op = decode_op(round_state.received[key])
                    round_state.decoded[key] = op
                    node.metrics.decode_cache_misses += 1
                else:
                    node.metrics.decode_cache_hits += 1
            decoded.append((key, op))
            object_ids |= op.object_ids()
        remote_touched: set[str] = set()
        logged: list[tuple] = []
        with node.read_locks.writing(sorted(object_ids)):
            for key, op in decoded:
                result = op.execute(node.model.committed)
                node.model.record_completed(
                    CompletedEntry(key, op, result, node.scheduler.now())
                )
                logged.append(
                    (
                        key.machine_id,
                        key.op_number,
                        round_state.received[key],
                        result,
                        node.scheduler.now(),
                    )
                )
                node.trace(Tracer.COMMIT, key=str(key), ok=result)
                if result and key.machine_id != node.machine_id:
                    remote_touched |= op.object_ids()
                if key in self.in_flight:
                    entry = self.in_flight.pop(key)
                    entry.executions += 1
                    node.metrics.record_execution(key)
                    self.pending_completions.append((entry, result))
                    if result:
                        node.metrics.ops_committed_ok += 1
                    else:
                        node.metrics.ops_committed_failed += 1
                        if entry.issue_result:
                            node.metrics.conflicts += 1
            # Version bookkeeping: these are exactly the committed-store
            # ids this round may have mutated — the delta guess-refresh
            # and the version-keyed snapshot cache both key off them.
            node.model.committed.mark_dirty(object_ids)
        self.refresh_backlog |= object_ids
        round_state.applied = True
        # Write-ahead ordering: the committed round reaches the durable
        # log before this machine acknowledges it, so an acked round is
        # always recoverable after a crash.
        completed_global = node.completed_offset + node.model.completed_count
        node.log_committed_round(round_state.round_id, logged, completed_global)
        if node.signals_mesh.faults.crash_at_commit(
            node.machine_id, round_state.round_id
        ):
            # Crash-at-commit-point fault: die after the log append,
            # before the ApplyAck — the master will remove us; recovery
            # restarts from snapshot + WAL.
            node.trace(
                Tracer.RECOVERY, action="crash_at_commit", round=round_state.round_id
            )
            node.halt()
            return

        def ack_and_update() -> None:
            if node.state == node.STATE_STOPPED:  # crashed before the ack fired
                return
            node.broadcast_signal(
                msg.ApplyAck(round_state.round_id, node.machine_id)
            )
            self._update_guess(round_state, remote_touched)

        node.scheduler.call_later(node.config.apply_cpu(len(decoded)), ack_and_update)
        # A pipelined later round may already be fully collected.
        self._nudge_later_rounds(round_state.round_id)

    def _update_guess(
        self,
        round_state: RoundState,
        remote_touched: set[str] = frozenset(),
    ) -> None:
        """Copy committed → guess, run completions, re-apply pending ops.

        The copy is a **delta refresh**: only committed-store ids the
        applied-but-unrefreshed rounds touched (``refresh_backlog`` —
        with pipelining that can cover several rounds at once, exactly
        like the naive copy of the *current* committed store did),
        objects the guess store dirtied replaying pending ops, and
        membership changes are copied — O(touched state) per round
        instead of the paper's literal O(total state) full copy
        (``delta_refresh=False`` restores the latter;
        ``refresh_oracle=True`` cross-checks the delta against a full
        shadow rebuild every round).
        """
        node = self.node
        model = node.model
        touched = self.refresh_backlog
        self.refresh_backlog = set()
        node.enter_window("update")
        if node.config.delta_refresh:
            candidates = model.guess.refresh_candidates(model.committed, touched)
            with node.read_locks.writing(sorted(candidates)):
                copied = model.guess.refresh_delta_from(model.committed, touched)
        else:
            with node.read_locks.writing(model.committed.ids()):
                copied = model.guess.refresh_from(model.committed)
        node.metrics.refresh_rounds += 1
        node.metrics.refresh_objects_copied += copied
        node.metrics.refresh_objects_live += len(model.committed)
        node.trace(Tracer.REFRESH, round=round_state.round_id, copied=copied)
        completions = self.pending_completions
        self.pending_completions = []
        for entry, result in completions:
            node.metrics.commit_latency_total += node.scheduler.now() - entry.issued_at
            node.metrics.commit_latency_count += 1
            if entry.completion is not None:
                entry.completion(result)
            node.trace(Tracer.COMPLETION, key=str(entry.key), ok=result)
        for entry in node.model.pending:
            entry.op.execute(node.model.guess)  # result deliberately ignored
            node.model.guess.mark_dirty(entry.op.object_ids())
            entry.executions += 1
            node.metrics.record_execution(entry.key)
        if node.config.refresh_oracle and not node.model.check_convergence_invariant():
            from repro.errors import RuntimeFailure

            raise RuntimeFailure(
                f"delta-refresh divergence on {node.machine_id} after round "
                f"{round_state.round_id}: refreshed sg != [P](sc)"
            )
        node.fire_remote_updates(remote_touched)

        def end_update() -> None:
            node.exit_window("update")

        node.scheduler.call_later(
            node.config.update_cpu(len(node.model.pending)), end_update
        )

    # -- stage 3 and recovery -------------------------------------------------------

    def _on_sync_complete(self, done: msg.SyncComplete) -> None:
        self.last_done_round = max(self.last_done_round, done.round_id)
        round_state = self.rounds.pop(done.round_id, None)
        missed_commit = round_state is not None and not round_state.applied
        if round_state is not None:
            round_state.done = True
            if round_state.missing_timer is not None:
                round_state.missing_timer.cancel()  # type: ignore[attr-defined]
        self.last_flush.pop(done.round_id, None)
        self.op_buffer.pop(done.round_id, None)
        if missed_commit:
            # The cluster committed a round we never applied (the master
            # can only finish a round after our ApplyAck or our removal,
            # so our ParticipantRemoved must have been lost).  Our
            # committed prefix now has a hole: skipping ahead to later
            # pipelined rounds would durably log a gapped history, so
            # stop applying until the master's Restart rejoins us.
            self.evicted = True
            self.node.trace(
                Tracer.RECOVERY, action="missed_commit", round=done.round_id
            )
            return
        self._nudge_later_rounds(done.round_id)

    def _on_participant_removed(self, removed: msg.ParticipantRemoved) -> None:
        round_state = self.rounds.get(removed.round_id)
        if round_state is None:
            return
        if removed.machine_id == self.node.machine_id:
            # We were removed while alive (our signals were lost).  The
            # round will commit everywhere without us, leaving a hole in
            # our prefix — applying later pipelined rounds over that
            # hole would durably log a gapped history, so stop applying
            # entirely; the Restart that follows rejoins us cleanly.
            round_state.done = True
            self.evicted = True
            self.node.trace(
                Tracer.RECOVERY, action="evicted", round=round_state.round_id
            )
            return
        if removed.drop_ops:
            # Removed before its flush was published: its ops are not
            # part of the round anywhere.
            round_state.dropped.add(removed.machine_id)
            round_state.received = {
                key: payload
                for key, payload in round_state.received.items()
                if key.machine_id != removed.machine_id
            }
            if round_state.counts is not None:
                round_state.counts.pop(removed.machine_id, None)
                self._try_apply(round_state)
        else:
            # Its flush is in the published counts, so its ops stay in
            # the consolidated list on every machine — dropping them
            # locally would diverge from nodes that already applied.
            # The removal only means it will not acknowledge.
            self._try_apply(round_state)

    # -- helpers -----------------------------------------------------------------

    def _ensure_round(self, round_id: int, order: tuple[str, ...]) -> RoundState | None:
        if self.node.machine_id not in order:
            return None
        if round_id <= self.last_done_round:
            # A resent signal arrived after the round's SyncComplete
            # popped it; recreating it would make an empty zombie round
            # that blocks every later round's in-order apply.
            return None
        if round_id not in self.rounds:
            state = RoundState(round_id, order)
            buffered = self.op_buffer.pop(round_id, {})
            state.received.update(buffered)
            self.rounds[round_id] = state
        return self.rounds[round_id]

    def reset(self) -> None:
        """Drop all protocol state (used on restart)."""
        for round_state in self.rounds.values():
            if round_state.missing_timer is not None:
                round_state.missing_timer.cancel()  # type: ignore[attr-defined]
        self.rounds.clear()
        self.op_buffer.clear()
        self.refresh_backlog.clear()
        self.last_flush.clear()
        self.in_flight.clear()
        self.pending_completions.clear()
        self.evicted = False


class MasterControl:
    """Master-side round management, membership and stall recovery.

    Rounds live in ``inflight`` keyed by round id.  Without pipelining
    (``SyncConfig.pipeline_depth == 1``) at most one round is open at a
    time, reproducing the paper's strictly phased protocol.  With depth
    *d* the master opens collection for round *k+1* as soon as round
    *k* reaches its apply stage, keeping at most *d* rounds in flight;
    at most one round is ever in the flush stage, and rounds always
    finish (``SyncComplete``) in round-id order.
    """

    def __init__(self, node: "GuesstimateNode"):
        self.node = node
        self.participants: list[str] = [node.machine_id]
        self.round_counter = 0
        self.inflight: dict[int, _MasterRound] = {}
        self.join_queue: list[str] = []
        self.awaiting_ack: set[str] = set()
        self.awaiting_restart: set[str] = set()
        #: joiners that announced durable recovered state: id -> global
        #: |C| they already hold (served a backlog Welcome if possible)
        self.recovered_counts: dict[str, int] = {}
        #: id -> (machine_id, op_number) tail key of that recovered
        #: history, cross-checked before a delta Welcome is served
        self.recovered_tails: dict[str, tuple] = {}
        self._progress_seq = 0
        self._next_round_timer: object | None = None
        self._stopped = False
        self.running = False  # set once start() schedules the first round

    # -- round bookkeeping -----------------------------------------------------------

    @property
    def current(self) -> "_MasterRound | None":
        """The oldest in-flight round (None when the pipeline is idle)."""
        if not self.inflight:
            return None
        return self.inflight[min(self.inflight)]

    @property
    def collecting(self) -> "_MasterRound | None":
        """The round currently in its flush stage, if any (at most one)."""
        for round_ in self.inflight.values():
            if round_.stage == "flush":
                return round_
        return None

    @property
    def pipeline_depth(self) -> int:
        return self.node.config.sync.pipeline_depth

    # -- round lifecycle -----------------------------------------------------------

    def start(self, delay: float | None = None) -> None:
        """Schedule the first (or next) synchronization round."""
        if self._stopped:
            return
        self.running = True
        interval = self.node.config.sync_interval if delay is None else delay
        if self._next_round_timer is not None:
            self._next_round_timer.cancel()  # type: ignore[attr-defined]
        self._next_round_timer = self.node.scheduler.call_later(
            interval, self.start_round
        )

    def stop(self) -> None:
        self._stopped = True
        if self._next_round_timer is not None:
            self._next_round_timer.cancel()  # type: ignore[attr-defined]

    def _schedule_next_round(self) -> None:
        """Arm the next-round timer if the pipeline has room.

        Joins are only processed on an idle pipeline (the paper
        welcomes between rounds), so while joiners wait the pipeline is
        drained rather than extended.
        """
        if self._stopped or not self.running:
            return
        if self._next_round_timer is not None:
            return
        if self.collecting is not None or len(self.inflight) >= self.pipeline_depth:
            return
        if self.inflight and (self.join_queue or self.awaiting_ack):
            return  # drain so the joiners can be welcomed
        self._next_round_timer = self.node.scheduler.call_later(
            self.node.config.sync_interval, self.start_round
        )

    def start_round(self) -> None:
        self._next_round_timer = None
        if self._stopped:
            return
        if self.collecting is not None or len(self.inflight) >= self.pipeline_depth:
            return  # raced; the blocking round reschedules as it advances
        if not self.inflight:
            self._process_membership()
        if len(self.participants) < 1:  # pragma: no cover - master always present
            self.start()
            return
        self.round_counter += 1
        order = tuple(self.participants)
        from repro.runtime.metrics import SyncRecord

        mode = self.node.config.collection_mode
        concurrent = mode == "concurrent"
        round_ = _MasterRound(
            round_id=self.round_counter,
            order=order,
            parallel=concurrent,
            record=SyncRecord(
                round_id=self.round_counter,
                started_at=self.node.scheduler.now(),
                participants=len(order),
                collection=mode,
                pipelined=bool(self.inflight),
            ),
        )
        self.inflight[self.round_counter] = round_
        self.node.trace(Tracer.SYNC_START, round=self.round_counter, users=len(order))
        self.node.broadcast_signal(
            msg.StartSync(self.round_counter, order, concurrent)
        )
        if not concurrent:
            self._grant_turn(round_)
        self._arm_watchdog()

    def _grant_turn(self, round_: "_MasterRound") -> None:
        """Grant the flush turn to the next machine in order."""
        while round_.turn_index < len(round_.order):
            machine_id = round_.order[round_.turn_index]
            if machine_id in round_.removed:
                round_.turn_index += 1
                continue
            turn = msg.YourTurn(round_.round_id, machine_id, round_.order)
            if machine_id == self.node.machine_id:
                self.node.synchronizer.handle_signal(turn)
            else:
                self.node.signals_mesh.send(self.node.machine_id, machine_id, turn)
            return
        self._begin_apply(round_)

    def _begin_apply(self, round_: "_MasterRound") -> None:
        round_.stage = "apply"
        counts = tuple(sorted(round_.counts.items()))
        round_.record.ops_committed = sum(round_.counts.values())
        self.node.broadcast_signal(
            msg.BeginApply(round_.round_id, round_.order, counts)
        )
        self._progress()
        # Pipelining: collection of the next round may overlap this
        # round's apply/ack latency.
        self._schedule_next_round()

    # -- signal handling (master consumes these) -------------------------------------

    def handle_signal(self, payload: object) -> None:
        if isinstance(payload, msg.FlushDone):
            self._on_flush_done(payload)
        elif isinstance(payload, msg.ApplyAck):
            self._on_apply_ack(payload)
        elif isinstance(payload, msg.Hello):
            self._on_hello(payload)
        elif isinstance(payload, msg.WelcomeAck):
            self._on_welcome_ack(payload)
        elif isinstance(payload, msg.Goodbye):
            self._on_goodbye(payload)

    def _on_flush_done(self, done: msg.FlushDone) -> None:
        round_ = self.inflight.get(done.round_id)
        if round_ is None:
            return
        if done.machine_id in round_.counts or done.machine_id in round_.removed:
            return
        round_.counts[done.machine_id] = done.count
        self._progress()
        if round_.stage != "flush":
            return
        if round_.parallel:
            expected = set(round_.order) - round_.removed
            if expected <= set(round_.counts):
                self._begin_apply(round_)
        elif (
            round_.turn_index < len(round_.order)
            and round_.order[round_.turn_index] == done.machine_id
        ):
            round_.turn_index += 1
            self._grant_turn(round_)

    def _on_apply_ack(self, ack: msg.ApplyAck) -> None:
        round_ = self.inflight.get(ack.round_id)
        if round_ is None:
            return
        round_.acks.add(ack.machine_id)
        self._progress()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        """Finish every fully-acked round, strictly in round-id order."""
        finished = False
        while self.inflight:
            round_ = self.inflight[min(self.inflight)]
            expected = set(round_.order) - round_.removed
            if round_.stage != "apply" or not expected <= round_.acks:
                break
            round_.record.finished_at = self.node.scheduler.now()
            self.node.metrics_system.sync_records.append(round_.record)
            self.node.trace(
                Tracer.SYNC_DONE,
                round=round_.round_id,
                duration=round(round_.record.duration, 4),
            )
            self.node.broadcast_signal(msg.SyncComplete(round_.round_id))
            del self.inflight[round_.round_id]
            finished = True
        if not finished:
            return
        self._nudge_restarts()
        if self.awaiting_ack and not self.inflight:
            self._process_membership()  # re-welcome unacked joiners
        self._schedule_next_round()

    # -- membership ---------------------------------------------------------------------

    def _on_hello(self, hello: msg.Hello) -> None:
        self.awaiting_restart.discard(hello.machine_id)
        if hello.recovered_count is not None:
            self.recovered_counts[hello.machine_id] = hello.recovered_count
            if hello.recovered_tail is not None:
                self.recovered_tails[hello.machine_id] = tuple(
                    hello.recovered_tail
                )
            else:
                self.recovered_tails.pop(hello.machine_id, None)
        else:
            self.recovered_counts.pop(hello.machine_id, None)
            self.recovered_tails.pop(hello.machine_id, None)
        if hello.machine_id in self.participants:
            # A standing participant saying Hello has rebooted out from
            # under us (silent crash, quick recovery): its old standing
            # is stale, so fold it back in through the join path.
            self._remove_machine(hello.machine_id, restart=False)
        if hello.machine_id not in self.join_queue:
            self.join_queue.append(hello.machine_id)
        # A join between rounds can be processed immediately.
        if not self.inflight:
            self._process_membership()

    def _on_welcome_ack(self, ack: msg.WelcomeAck) -> None:
        if ack.machine_id not in self.awaiting_ack:
            return
        if self.inflight:
            # The ack raced rounds this machine is not part of: its
            # Welcome predates their commits, so admitting it now would
            # leave a permanent hole in its committed sequence.  Keep it
            # queued; _maybe_finish re-welcomes it with a fresh snapshot
            # once the pipeline drains (loading is idempotent and the
            # joiner catches up on the missed suffix).
            return
        self.awaiting_ack.discard(ack.machine_id)
        self.recovered_counts.pop(ack.machine_id, None)
        self.recovered_tails.pop(ack.machine_id, None)
        if ack.machine_id not in self.participants:
            self.participants.append(ack.machine_id)
        self.node.trace(Tracer.MEMBERSHIP, joined=ack.machine_id)

    def _on_goodbye(self, goodbye: msg.Goodbye) -> None:
        if goodbye.machine_id in self.participants:
            self.participants.remove(goodbye.machine_id)
            self.node.trace(Tracer.MEMBERSHIP, left=goodbye.machine_id)
        # Treat a mid-round departure like a stage-appropriate removal
        # in every in-flight round.
        self._remove_machine(goodbye.machine_id, restart=False)

    def _process_membership(self) -> None:
        """Welcome queued joiners (between rounds, as the paper does).

        Machines that never acknowledged a previous Welcome (the
        message may have been lost) are re-welcomed with a fresh
        snapshot — loading it is idempotent on the joiner.
        """
        while self.join_queue:
            self.awaiting_ack.add(self.join_queue.pop(0))
        for machine_id in sorted(self.awaiting_ack):
            welcome = self._build_welcome(machine_id)
            self.node.signals_mesh.send(self.node.machine_id, machine_id, welcome)

    def _build_welcome(self, machine_id: str) -> msg.Welcome:
        """Full-snapshot Welcome, or a committed-op backlog when the
        joiner announced durable recovered state this master can extend
        (its recovered |C| falls inside our held history and its tail
        key matches our entry at that position — a count alone cannot
        prove the recovered history is a prefix of the global order)."""
        node = self.node
        recovered_count = self.recovered_counts.get(machine_id)
        offset = node.completed_offset
        total = offset + node.model.completed_count
        op_floor = node.model.op_high_water.get(machine_id, 0)
        if recovered_count is not None and not self._tail_matches(
            machine_id, recovered_count, offset
        ):
            # The joiner's recovered history is NOT the global prefix it
            # claims (e.g. it logged pipelined rounds around a hole
            # before crashing).  Serving a backlog would cement the
            # divergence; fall back to the full snapshot, which also
            # rebases its durable log to a clean prefix.
            self.node.trace(
                Tracer.RECOVERY, action="stale_recovery", machine=machine_id
            )
            recovered_count = None
        if recovered_count is not None and offset <= recovered_count <= total:
            backlog = tuple(
                (
                    entry.key.machine_id,
                    entry.key.op_number,
                    encode_op(entry.op),
                    entry.result,
                    entry.committed_at,
                )
                for entry in node.model.completed[recovered_count - offset :]
            )
            return msg.Welcome(
                machine_id=machine_id,
                master_id=node.machine_id,
                snapshot={},
                completed_count=total,
                backlog_from=recovered_count,
                backlog=backlog,
                op_floor=op_floor,
            )
        return msg.Welcome(
            machine_id=machine_id,
            master_id=node.machine_id,
            snapshot=node.model.committed.snapshot_states(),
            completed_count=node.model.completed_count,
            op_floor=op_floor,
        )

    def _tail_matches(
        self, machine_id: str, recovered_count: int, offset: int
    ) -> bool:
        """True when the joiner's announced tail key agrees with our
        completed entry at its claimed position (or no tail to check)."""
        tail = self.recovered_tails.get(machine_id)
        if tail is None:
            return True  # snapshot-only recovery holds no entries
        index = recovered_count - offset - 1
        if index < 0 or index >= self.node.model.completed_count:
            return True  # outside our history; the bounds check decides
        entry = self.node.model.completed[index]
        return (entry.key.machine_id, entry.key.op_number) == tail

    def _nudge_restarts(self) -> None:
        """Re-send Restart to machines that have not re-entered yet."""
        for machine_id in list(self.awaiting_restart):
            if self.node.signals_mesh.is_member(machine_id):
                self.node.signals_mesh.send(
                    self.node.machine_id, machine_id, msg.Restart(machine_id)
                )

    # -- stall detection and recovery ------------------------------------------------------

    def _progress(self) -> None:
        self._progress_seq += 1
        self._arm_watchdog()

    def _arm_watchdog(self) -> None:
        if not self.inflight or self._stopped:
            return
        seq = self._progress_seq
        self.node.scheduler.call_later(
            self.node.config.stall_timeout, lambda: self._watchdog(seq)
        )

    def _watchdog(self, seq: int) -> None:
        if self._stopped or seq != self._progress_seq or not self.inflight:
            return
        for round_id in sorted(self.inflight):
            round_ = self.inflight.get(round_id)
            if round_ is None:
                continue  # finished while we handled an earlier round
            if round_.stage == "flush":
                if round_.parallel:
                    expected = set(round_.order) - round_.removed
                    for stalled in sorted(expected - set(round_.counts)):
                        if round_.stage != "flush":
                            break  # a removal completed the flush stage
                        self._handle_stall(round_, stalled, stage="flush")
                elif round_.turn_index < len(round_.order):
                    stalled = round_.order[round_.turn_index]
                    self._handle_stall(round_, stalled, stage="flush")
            else:
                expected = set(round_.order) - round_.removed
                for stalled in sorted(expected - round_.acks):
                    if round_id not in self.inflight:
                        break  # the round finished while we were removing
                    self._handle_stall(round_, stalled, stage="apply")
        self._maybe_finish()
        if self.inflight:
            self._progress()  # restart the clock after acting

    def _handle_stall(
        self, round_: "_MasterRound", machine_id: str, stage: str
    ) -> None:
        strikes = round_.strikes.get(machine_id, 0) + 1
        round_.strikes[machine_id] = strikes
        is_self = machine_id == self.node.machine_id
        # The master can never strike out its own machine: a removed
        # node must re-join via Hello, but Hello is a plain broadcast
        # that never reaches this (co-located) MasterControl, so a
        # self-removal wedges the master's node permanently.  Keep
        # resending to ourselves instead.
        resend = strikes == 1 or is_self
        self.node.trace(
            Tracer.RECOVERY,
            action="resend" if resend else "remove",
            machine=machine_id,
            stage=stage,
        )
        if resend:
            round_.record.resends += 1
            if stage == "flush":
                payload: object = msg.YourTurn(
                    round_.round_id, machine_id, round_.order
                )
            else:
                counts = tuple(sorted(round_.counts.items()))
                payload = msg.BeginApply(round_.round_id, round_.order, counts)
            if is_self:
                # Self-addressed mesh sends arrive with delivery latency
                # and can land *after* the round's SyncComplete, out of
                # order with every other self-dispatched signal; keep
                # master-to-self delivery synchronous (as _grant_turn
                # does).
                self.node.synchronizer.handle_signal(payload)
            else:
                self.node.signals_mesh.send(
                    self.node.machine_id, machine_id, payload
                )
        else:
            round_.record.removals += 1
            self._remove_machine(machine_id, restart=True)

    def _remove_machine(self, machine_id: str, restart: bool) -> None:
        """Remove a machine from the participant list and from *every*
        in-flight round (a removed machine must re-join; it cannot keep
        participating in later pipelined rounds)."""
        if machine_id in self.participants:
            self.participants.remove(machine_id)
        if restart:
            self.awaiting_restart.add(machine_id)
            if self.node.signals_mesh.is_member(machine_id):
                self.node.signals_mesh.send(
                    self.node.machine_id, machine_id, msg.Restart(machine_id)
                )
        for round_id in sorted(self.inflight):
            round_ = self.inflight.get(round_id)
            if round_ is not None:
                self._remove_from_round(round_, machine_id)
        self._maybe_finish()

    def _remove_from_round(
        self, round_: "_MasterRound", machine_id: str
    ) -> None:
        if machine_id in round_.removed or machine_id not in set(round_.order):
            return
        round_.removed.add(machine_id)
        drop_ops = machine_id not in round_.counts
        if round_.stage == "flush":
            # Counts are not published yet; the machine's flush (if
            # any) can still be excluded consistently everywhere.
            round_.counts.pop(machine_id, None)
        # After BeginApply the counts are immutable: some machines may
        # already have committed with them, so the removal must not
        # change the round's consolidated list.
        self.node.broadcast_signal(
            msg.ParticipantRemoved(round_.round_id, machine_id, drop_ops)
        )
        if round_.stage == "flush":
            if round_.parallel:
                expected = set(round_.order) - round_.removed
                if expected <= set(round_.counts):
                    self._begin_apply(round_)
            elif (
                round_.turn_index < len(round_.order)
                and round_.order[round_.turn_index] == machine_id
            ):
                round_.turn_index += 1
                self._grant_turn(round_)


@dataclass
class _MasterRound:
    """Master-side bookkeeping for one in-flight round."""

    round_id: int
    order: tuple[str, ...]
    record: object  # SyncRecord (kept loose to avoid a metrics import cycle)
    parallel: bool = False
    stage: str = "flush"
    turn_index: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    acks: set[str] = field(default_factory=set)
    removed: set[str] = field(default_factory=set)
    strikes: dict[str, int] = field(default_factory=dict)
