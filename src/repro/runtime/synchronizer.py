"""The three-stage synchronization protocol (paper section 4).

Every node runs a :class:`Synchronizer`; the designated master node
additionally runs a :class:`MasterControl` that initiates rounds,
grants flush turns, watches for stalls and drives recovery.

Stage 1 — **AddUpdatesToMesh**.  Two collection modes
(:class:`~repro.runtime.config.SyncConfig.collection`):

* ``sequential`` — the paper's protocol: the master grants each
  machine its turn (:class:`~repro.runtime.messages.YourTurn`) and
  round latency grows linearly with the participant count;
* ``concurrent`` — the master broadcasts one collect signal
  (``StartSync(parallel=True)``) and every participant flushes at
  once; arrivals are ordered deterministically by
  ``(machine_id, seq)``, so the committed sequence is identical.

In either mode a flush ships the pending list as size-capped
:class:`~repro.runtime.messages.OpBatch` frames (``batch_max_ops``
entries each) followed by a
:class:`~repro.runtime.messages.FlushDone`.  No operations may be
issued inside the flush window.

**Round pipelining** (``SyncConfig.pipeline_depth > 1``): the master
begins collecting round *k+1* while round *k*'s ``BeginApply``/acks
are still in flight, keeping at most ``pipeline_depth`` rounds open.
Every node applies rounds strictly in round-id order (a later round's
consolidated list waits until every earlier known round has been
applied), so pipelining changes latency, never the committed sequence.

Stage 2 — **ApplyUpdatesFromMesh**.  The master broadcasts
:class:`~repro.runtime.messages.BeginApply` with the authoritative
per-machine counts.  Each machine waits for every expected operation,
applies the consolidated list to its committed state in lexicographic
(machineID, opnumber) order, acknowledges, then refreshes the
guesstimated state (copy committed → guess, run completion routines,
re-apply the still-pending list).  No operations may be issued inside
the update window.

Stage 3 — **FlagCompletion**.  Once every acknowledgment is in, the
master broadcasts :class:`~repro.runtime.messages.SyncComplete` and
schedules the next round.

Fault recovery mirrors the paper: a stalled machine first gets its
signal resent (:class:`~repro.runtime.messages.YourTurn` or a unicast
``BeginApply``); if it still does not respond it is removed from the
current synchronization and told to :class:`~repro.runtime.messages.Restart`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.machine import CompletedEntry, PendingEntry
from repro.core.operations import OpKey, PrimitiveOp
from repro.core.serialization import decode_op, encode_op
from repro.core.shared_object import absorbing_keys
from repro.runtime import messages as msg
from repro.runtime.tracing import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.node import GuesstimateNode


def consolidated_order(node: "GuesstimateNode", round_state: "RoundState") -> list[OpKey]:
    """The global apply order: lexicographic (machineID, opnumber).

    Every machine must use this exact order or the committed sequences
    diverge — which is why the simulation fuzzer's self-test mutates
    this one function and asserts the invariant probes catch it.
    """
    assert round_state.counts is not None
    return sorted(
        key for key in round_state.received if key.machine_id in round_state.counts
    )


@dataclass(slots=True)
class RoundState:
    """One node's view of a synchronization round."""

    round_id: int
    order: tuple[str, ...]
    flushed: bool = False
    flush_count: int = 0
    counts: dict[str, int] | None = None
    received: dict[OpKey, dict] = field(default_factory=dict)
    dropped: set[str] = field(default_factory=set)
    applied: bool = False
    done: bool = False
    missing_timer: object | None = None
    #: per-round decode_op memo (resends/replays reuse decoded trees)
    decoded: dict[OpKey, object] = field(default_factory=dict)
    #: armed flush timer for a pre-announced round (scheduled_rounds)
    flush_timer: object | None = None
    #: FlushDone counts observed by this node (speculative_apply input)
    flush_done: dict[str, int] = field(default_factory=dict)
    #: machine -> claimed OpBatch frame total / {seq: ops in frame}.
    #: When every frame of a machine's flush has arrived, its block is
    #: complete even before its FlushDone — only trustworthy while
    #: ``counts`` is None (resends reframe, but are only requested
    #: after BeginApply pins the counts).
    batch_total: dict[str, int] = field(default_factory=dict)
    batch_frames: dict[str, dict[int, int]] = field(default_factory=dict)
    #: a ParticipantRemoved was seen for this round — speculation off
    removals_seen: bool = False
    #: some ops committed against counts self-assembled from FlushDones
    #: rather than from BeginApply; the ApplyAck then carries a
    #: fingerprint the master validates
    speculative: bool = False
    #: machine -> op count of blocks already committed by the streaming
    #: apply (lexicographic machine order; also the ack fingerprint)
    stream_done: dict[str, int] = field(default_factory=dict)
    #: a block's apply-CPU charge is in progress
    stream_busy: bool = False
    #: object ids touched by successful remote ops (remote-update hooks)
    stream_remote_touched: set[str] = field(default_factory=set)

    def received_count_from(self, machine_id: str) -> int:
        return sum(1 for key in self.received if key.machine_id == machine_id)

    def missing(self) -> dict[str, int]:
        """Per-machine number of operations still missing."""
        assert self.counts is not None
        gaps: dict[str, int] = {}
        for machine_id, expected in self.counts.items():
            have = self.received_count_from(machine_id)
            if have < expected:
                gaps[machine_id] = expected - have
        return gaps

    def complete(self) -> bool:
        if self.counts is None:
            return False
        return not self.missing()


class Synchronizer:
    """Per-node protocol logic (both master and slaves run this)."""

    def __init__(self, node: "GuesstimateNode"):
        self.node = node
        self.rounds: dict[int, RoundState] = {}
        self.op_buffer: dict[int, dict[OpKey, dict]] = {}
        self.last_flush: dict[int, dict[OpKey, dict]] = {}
        self.in_flight: dict[OpKey, PendingEntry] = {}
        self.pending_completions: list[tuple[PendingEntry, bool]] = []
        #: committed-store ids touched by applied rounds whose guess
        #: refresh has not run yet — the delta refresh drains this, so
        #: with pipelining round k's refresh also covers round k+1's
        #: already-applied ops (the naive full copy trivially did).
        self.refresh_backlog: set[str] = set()
        # Master-liveness tracking for the failover extension.
        self.last_master_signal: float = node.scheduler.now()
        self.last_order: tuple[str, ...] = ()
        self.last_round_seen: int = 0
        #: highest round id we have seen SyncComplete for — stale
        #: signals for rounds at or below this must not resurrect them
        self.last_done_round: int = 0
        #: set once this node learns it missed a committed round (the
        #: master removed it mid-round, or a SyncComplete arrived for a
        #: round it never applied).  From that moment its committed
        #: prefix has a hole: applying any later round would log a
        #: gapped history to the WAL, which recovery would then announce
        #: as a clean prefix.  All applies stop until restart/reset.
        self.evicted: bool = False
        #: the WAL may hold stream-committed blocks of a round the
        #: cluster committed differently (or not at all).  The durable
        #: log is then no longer a trustworthy prefix of the global
        #: order, so restart must NOT announce a recovered tail — it
        #: takes the full-snapshot Welcome, which rebases the store.
        self.wal_suspect: bool = False

    # -- message dispatch -----------------------------------------------------

    def handle_signal(self, payload: object) -> None:
        """Dispatch one signals-channel message."""
        node = self.node
        if node.state == node.STATE_JOINING:
            # A joining machine is outside every round until the
            # master's Welcome admits it (the paper welcomes between
            # rounds).  Applying round signals on top of recovered
            # state here would race the Welcome the master builds from
            # our announced position and duplicate committed ops.
            if isinstance(payload, (msg.StartSync, msg.BeginApply, msg.SyncComplete)):
                self.last_master_signal = node.scheduler.now()  # master liveness
            if (
                isinstance(payload, msg.Welcome)
                and payload.machine_id == node.machine_id
            ):
                node.load_welcome(payload)
            return
        if isinstance(
            payload,
            (
                msg.StartSync,
                msg.YourTurn,
                msg.BeginApply,
                msg.SyncComplete,
                msg.ParticipantRemoved,
                msg.Welcome,
                msg.Restart,
            ),
        ):
            self.last_master_signal = node.scheduler.now()
            if isinstance(payload, (msg.StartSync, msg.BeginApply, msg.YourTurn)):
                self.last_order = payload.order
                self.last_round_seen = max(self.last_round_seen, payload.round_id)
            elif isinstance(payload, msg.SyncComplete):
                self.last_round_seen = max(self.last_round_seen, payload.round_id)
        if isinstance(payload, msg.StartSync):
            self._on_start_sync(payload)
        elif isinstance(payload, msg.YourTurn):
            if payload.machine_id == node.machine_id:
                self._on_your_turn(payload)
        elif isinstance(payload, msg.FlushDone):
            self._on_flush_done_signal(payload)
        elif isinstance(payload, msg.BeginApply):
            self._on_begin_apply(payload)
        elif isinstance(payload, msg.ResendOpsRequest):
            self._on_resend_request(payload)
        elif isinstance(payload, msg.SyncComplete):
            self._on_sync_complete(payload)
        elif isinstance(payload, msg.ParticipantRemoved):
            self._on_participant_removed(payload)
        elif isinstance(payload, msg.Restart):
            # A Restart that crosses paths with our own in-flight Hello
            # is stale: we already restarted and are waiting for the
            # Welcome, so restarting again would only repeat recovery.
            if (
                payload.machine_id == node.machine_id
                and node.state != node.STATE_JOINING
            ):
                node.restart()
        elif isinstance(payload, msg.Welcome):
            if payload.machine_id == node.machine_id:
                node.load_welcome(payload)

    def handle_op(self, payload: msg.OpMessage | msg.OpBatch) -> None:
        """Dispatch one operations-channel message (single op or batch)."""
        if self.node.state == self.node.STATE_JOINING:
            return  # not in any round until welcomed
        if isinstance(payload, msg.OpBatch):
            items = [
                (OpKey(payload.machine_id, op_number), op_payload)
                for op_number, op_payload in payload.ops
            ]
        else:
            items = [(OpKey(payload.machine_id, payload.op_number), payload.payload)]
        if payload.round_id <= self.last_done_round:
            return  # late frames for a round that already completed
        round_state = self.rounds.get(payload.round_id)
        if round_state is None:
            buffered = self.op_buffer.setdefault(payload.round_id, {})
            buffered.update(items)
            return
        if payload.machine_id in round_state.dropped:
            return
        round_state.received.update(items)
        if isinstance(payload, msg.OpBatch):
            round_state.batch_total.setdefault(payload.machine_id, payload.total)
            round_state.batch_frames.setdefault(payload.machine_id, {})[
                payload.seq
            ] = len(payload.ops)
        self._try_apply(round_state)

    # -- stage 1: AddUpdatesToMesh ---------------------------------------------

    def _on_start_sync(self, start: msg.StartSync) -> None:
        if self.node.machine_id not in start.order:
            return
        round_state = self._ensure_round(start.round_id, start.order)
        if not start.parallel or round_state is None or round_state.flushed:
            return
        if start.start_at is not None:
            # Scheduled round (SyncConfig.scheduled_rounds): the master
            # pre-announced this round during the idle inter-round gap,
            # so every participant flushes at the agreed instant instead
            # of on signal receipt — the StartSync hop leaves the
            # round's critical path.  Latest announcement wins if the
            # master re-announces with a different start time.
            if round_state.flush_timer is not None:
                round_state.flush_timer.cancel()  # type: ignore[attr-defined]
            delay = max(0.0, start.start_at - self.node.scheduler.now())
            round_state.flush_timer = self.node.scheduler.call_later(
                delay, lambda: self._scheduled_flush(round_state)
            )
            return
        # Section-9 extension: everyone flushes at once.
        self._flush(round_state)

    def _scheduled_flush(self, round_state: RoundState) -> None:
        round_state.flush_timer = None
        if self.node.state != self.node.STATE_ACTIVE:
            # Crashed or offline before the agreed instant.  A signal-
            # triggered flush could never fire here (a non-active node
            # receives no mesh signals); the local timer must apply the
            # same rule.  The master's stall recovery handles our
            # missing FlushDone.
            return
        if self.rounds.get(round_state.round_id) is not round_state:
            return  # restart/reset dropped the round; the timer is stale
        if round_state.flushed or round_state.done:
            return
        self._flush(round_state)

    def _on_your_turn(self, turn: msg.YourTurn) -> None:
        round_state = self._ensure_round(turn.round_id, turn.order)
        if round_state is None or round_state.done:
            return
        if round_state.flushed:
            # Our FlushDone was probably lost; resend it (recovery path).
            self.node.broadcast_signal(
                msg.FlushDone(turn.round_id, self.node.machine_id, round_state.flush_count)
            )
            return
        self._flush(round_state)

    def _flush(self, round_state: RoundState) -> None:
        node = self.node
        node.enter_window("flush")
        entries = node.model.take_pending()
        if len(entries) > node.config.max_ops_per_flush:  # pragma: no cover
            overflow = entries[node.config.max_ops_per_flush :]
            entries = entries[: node.config.max_ops_per_flush]
            node.model.requeue_pending_front(overflow)
        if node.config.sync.compact_flush and len(entries) > 1:
            entries = self._compact_entries(entries)
        stash = self.last_flush.setdefault(round_state.round_id, {})
        encoded: list[tuple[int, dict]] = []
        profiler = node.profiler
        if profiler.enabled:
            _t0 = profiler.begin()
        for entry in entries:
            payload = encode_op(entry.op)
            stash[entry.key] = payload
            self.in_flight[entry.key] = entry
            round_state.received[entry.key] = payload  # self-delivery
            encoded.append((entry.key.op_number, payload))
        if profiler.enabled:
            profiler.end("encode", _t0)
        batches = self._broadcast_batches(round_state.round_id, encoded)
        round_state.flushed = True
        round_state.flush_count = len(entries)
        # Our own count is known right now — no need to wait for our
        # FlushDone to loop back before our block can stream-commit.
        round_state.flush_done[node.machine_id] = len(entries)
        node.metrics.op_batches_sent += batches
        node.trace(
            Tracer.FLUSH,
            round=round_state.round_id,
            count=len(entries),
            batches=batches,
        )

        def end_flush() -> None:
            node.exit_window("flush")
            node.broadcast_signal(
                msg.FlushDone(round_state.round_id, node.machine_id, round_state.flush_count)
            )

        node.scheduler.call_later(node.config.flush_cpu(len(entries)), end_flush)
        self._try_apply(round_state)

    def _broadcast_batches(
        self, round_id: int, encoded: list[tuple[int, dict]]
    ) -> int:
        """Broadcast ``(op_number, payload)`` pairs as OpBatch frames.

        Returns the number of frames sent.  An empty flush sends no
        data frames at all — FlushDone alone carries the zero count.
        """
        if not encoded:
            return 0
        node = self.node
        cap = node.config.sync.batch_max_ops
        chunks = [encoded[i : i + cap] for i in range(0, len(encoded), cap)]
        profiler = node.profiler
        if profiler.enabled:
            _t0 = profiler.begin()
        for seq, chunk in enumerate(chunks):
            node.ops_mesh.broadcast(
                node.machine_id,
                msg.OpBatch(
                    round_id, node.machine_id, seq, len(chunks), tuple(chunk)
                ),
            )
        if profiler.enabled:
            profiler.end("transport", _t0)
        return len(chunks)

    def _compact_entries(self, entries: list[PendingEntry]) -> list[PendingEntry]:
        """Op-log compaction (``SyncConfig.compact_flush``).

        A later pending :class:`PrimitiveOp` *absorbs* an earlier one
        from the same flush when both write the same last-write-wins
        slot — same object, same ``@absorbing`` method, same
        key-argument prefix — and no entry between them touches that
        object.  The absorbed op never rides the round; its completion
        fires with the superseder's commit result.

        Soundness rests on the absorbing law ``B(A(S)) == B(S)``, which
        ``@absorbing`` promises only for valid arguments of *B*, so
        absorption additionally requires the superseder to have
        succeeded at issue time: issue success on the guess implies its
        arguments passed validation, leaving only state-dependent
        failures, which by the law hit A and B identically.  The
        consolidated order is lexicographic (machineID, opnumber), so
        one machine's flush is contiguous in the committed sequence and
        no other machine's op can observe the absorbed intermediate
        write.
        """
        guess = self.node.model.guess
        survivors: list[PendingEntry | None] = []
        slot_of: dict[tuple, int] = {}
        last_touch: dict[str, int] = {}
        compacted = 0
        for entry in entries:
            op = entry.op
            slot = None
            if type(op) is PrimitiveOp and entry.issue_result and guess.has(op.object_id):
                keys = absorbing_keys(type(guess.get(op.object_id)), op.method_name)
                if keys is not None and len(op.args) >= keys:
                    slot = (op.object_id, op.method_name, op.args[:keys])
            if slot is not None:
                prev_index = slot_of.get(slot)
                if prev_index is not None and last_touch.get(op.object_id) == prev_index:
                    previous = survivors[prev_index]
                    assert previous is not None
                    entry.absorbed = previous.absorbed + (previous,)
                    previous.absorbed = ()
                    survivors[prev_index] = None
                    compacted += 1
            index = len(survivors)
            survivors.append(entry)
            if slot is not None:
                slot_of[slot] = index
            for object_id in op.object_ids():
                last_touch[object_id] = index
        if compacted:
            self.node.metrics.ops_compacted += compacted
            self.node.trace(
                Tracer.FLUSH, action="compact", absorbed=compacted
            )
        return [entry for entry in survivors if entry is not None]

    def _on_flush_done_signal(self, done: msg.FlushDone) -> None:
        """Track broadcast FlushDones for the speculative streaming apply.

        With ``SyncConfig.speculative_apply`` a FlushDone tells every
        node how many ops its sender contributed, so the consolidated
        list can be committed *block by block* in lexicographic machine
        order as flushes arrive — without waiting for the master's
        BeginApply, and overlapping apply CPU with the network wait for
        later flushes.  The ApplyAck then carries the per-machine
        counts actually committed as a fingerprint the master validates
        against its authoritative counts.
        """
        if not self.node.config.sync.speculative_apply:
            return
        if done.round_id <= self.last_done_round:
            return
        round_state = self.rounds.get(done.round_id)
        if round_state is None:
            return  # never speculate on a round we saw no StartSync for
        round_state.flush_done[done.machine_id] = done.count
        self._try_apply(round_state)

    # -- stage 2: ApplyUpdatesFromMesh -------------------------------------------

    def _on_begin_apply(self, begin: msg.BeginApply) -> None:
        if self.node.machine_id not in begin.order:
            return
        round_state = self._ensure_round(begin.round_id, begin.order)
        if round_state is None or round_state.done:
            return
        authoritative = dict(begin.counts)
        for dropped in round_state.dropped:
            authoritative.pop(dropped, None)
        if round_state.applied:
            if round_state.speculative:
                # We committed with self-assembled counts; check them
                # against the authoritative ones now that they exist.
                if authoritative != round_state.counts:
                    # Our committed round diverged from the one the
                    # master published.  Same hole-in-the-prefix latch
                    # as a missed commit: stop applying; the master's
                    # fingerprint check triggers our restart.
                    self._latch_evicted(suspect=True)
                    self.node.trace(
                        Tracer.RECOVERY,
                        action="speculation_diverged",
                        round=round_state.round_id,
                    )
                else:
                    # Heal a lost speculative ack: the master resends
                    # BeginApply on a stall, so answer it again.
                    self.node.broadcast_signal(
                        msg.ApplyAck(
                            round_state.round_id,
                            self.node.machine_id,
                            tuple(sorted(round_state.counts.items())),
                        )
                    )
            return
        for machine_id, count in round_state.stream_done.items():
            if authoritative.get(machine_id) != count:
                # A block we already committed is not part of the round
                # the master published: mid-stream divergence, and the
                # committed ops cannot be taken back.  Latch evicted;
                # the master's stall recovery restarts us.
                self._latch_evicted(suspect=True)
                self.node.trace(
                    Tracer.RECOVERY,
                    action="speculation_diverged",
                    round=round_state.round_id,
                )
                return
        round_state.counts = authoritative
        self._try_apply(round_state)
        if not round_state.applied and round_state.missing_timer is None:
            round_state.missing_timer = self.node.scheduler.call_later(
                self.node.config.missing_ops_timeout,
                lambda: self._request_missing(round_state),
            )

    def _request_missing(self, round_state: RoundState) -> None:
        round_state.missing_timer = None
        if round_state.applied or round_state.done:
            return
        have = tuple(
            sorted((key.machine_id, key.op_number) for key in round_state.received)
        )
        self.node.trace(
            Tracer.RECOVERY, action="request_missing", round=round_state.round_id
        )
        self.node.signals_mesh.broadcast(
            self.node.machine_id,
            msg.ResendOpsRequest(round_state.round_id, self.node.machine_id, have),
        )
        # Keep asking until the gap closes or the master removes us.
        round_state.missing_timer = self.node.scheduler.call_later(
            self.node.config.missing_ops_timeout,
            lambda: self._request_missing(round_state),
        )

    def _on_resend_request(self, request: msg.ResendOpsRequest) -> None:
        if request.machine_id == self.node.machine_id:
            return
        # Serve from everything we hold for the round: our own flush
        # stash plus every frame we received.  The requester may be
        # missing ops whose issuer has since crashed or been removed —
        # any surviving holder must be able to close the gap.
        available: dict[OpKey, dict] = {}
        round_state = self.rounds.get(request.round_id)
        if round_state is not None:
            available.update(round_state.received)
        available.update(self.last_flush.get(request.round_id, {}))
        if not available:
            return
        have = {OpKey(machine, number) for machine, number in request.have}
        by_issuer: dict[str, list[tuple[int, dict]]] = {}
        for key, payload in available.items():
            if key not in have:
                by_issuer.setdefault(key.machine_id, []).append(
                    (key.op_number, payload)
                )
        # Resends ride the same batched framing as the original flush;
        # a frame carries one issuer's ops, so group by issuer.
        cap = self.node.config.sync.batch_max_ops
        for issuer in sorted(by_issuer):
            missing = sorted(by_issuer[issuer])
            chunks = [missing[i : i + cap] for i in range(0, len(missing), cap)]
            for seq, chunk in enumerate(chunks):
                self.node.ops_mesh.send(
                    self.node.machine_id,
                    request.machine_id,
                    msg.OpBatch(
                        request.round_id,
                        issuer,
                        seq,
                        len(chunks),
                        tuple(chunk),
                    ),
                )

    def _earlier_round_open(self, round_state: RoundState) -> bool:
        """True while an earlier known round has not been applied yet.

        With pipelining, round *k+1*'s consolidated list can be fully
        collected before round *k* finishes — committing it early would
        reorder C, so apply strictly in round-id order.
        """
        return any(
            round_id < round_state.round_id
            and not (state.applied or state.done)
            for round_id, state in self.rounds.items()
        )

    def _nudge_later_rounds(self, round_id: int) -> None:
        """Re-check rounds blocked behind ``round_id`` (in order)."""
        for later_id in sorted(self.rounds):
            if later_id > round_id:
                self._try_apply(self.rounds[later_id])
                break  # _apply recurses if further rounds are ready

    def _latch_evicted(self, suspect: bool = False) -> None:
        """Stop applying until restart rejoins us.

        ``suspect`` (or any partially streamed round) additionally
        marks the WAL suspect: streamed blocks were logged the moment
        they committed, and the cluster's authoritative round may not
        contain them — or not at those global positions.
        """
        self.evicted = True
        if suspect or any(
            state.stream_done and not state.applied
            for state in self.rounds.values()
        ):
            self.wal_suspect = True

    def _try_apply(self, round_state: RoundState) -> None:
        if self.evicted:
            return  # our committed prefix has a hole; wait for Restart
        if round_state.applied or round_state.done:
            return
        node = self.node
        if (
            node.config.sync.speculative_apply
            and node.config.collection_mode == "concurrent"
        ):
            # All applies for this config run through the streaming
            # engine, whether counts come from FlushDones or BeginApply.
            self._advance_stream(round_state)
            return
        if not round_state.complete():
            return
        if self._earlier_round_open(round_state):
            return
        if round_state.missing_timer is not None:
            round_state.missing_timer.cancel()  # type: ignore[attr-defined]
            round_state.missing_timer = None
        self._apply(round_state)

    # -- speculative streaming apply (SyncConfig.speculative_apply) --------------

    def _stream_expected(self, round_state: RoundState) -> list[str] | None:
        """Machines whose blocks this round commits, in block order.

        Authoritative counts (BeginApply) pin the set exactly; before
        they arrive the set is speculated as the announced order minus
        drop-ops removals — but any removal makes the master's view of
        the round uncertain, so speculation stalls until BeginApply.
        """
        if round_state.counts is not None:
            return sorted(round_state.counts)
        if round_state.removals_seen:
            return None
        return sorted(set(round_state.order) - round_state.dropped)

    def _advance_stream(self, round_state: RoundState) -> None:
        """Commit ready blocks in order; finalize when all are in.

        A machine's block is ready when its op count is known (from
        BeginApply, else its own FlushDone), all its ops have arrived,
        and every lexicographically earlier block has committed.  Each
        block's apply CPU is charged before the next block starts, so
        the CPU cost serializes but overlaps the network wait for later
        flushes — by the time the slowest flush lands, only its own
        block's CPU separates us from the ApplyAck.
        """
        node = self.node
        if node.state == node.STATE_STOPPED:
            return  # crashed mid-stream; recovery rebuilds from the WAL
        while True:
            if round_state.stream_busy or round_state.applied or round_state.done:
                return
            if self._earlier_round_open(round_state):
                return
            expected = self._stream_expected(round_state)
            if expected is None:
                return  # removals poisoned speculation; wait for BeginApply
            remaining = [m for m in expected if m not in round_state.stream_done]
            if not remaining:
                if round_state.counts is not None or not round_state.removals_seen:
                    self._finalize_stream(round_state)
                return
            machine_id = remaining[0]
            if round_state.counts is not None:
                count = round_state.counts.get(machine_id)
                speculated = False
            else:
                count = round_state.flush_done.get(machine_id)
                if count is None and not node.is_master:
                    # FlushDone not here yet, but a complete frame set
                    # is just as good: ``total`` pins the frame count
                    # and the frames carry their op counts.  The master
                    # never takes this shortcut: op frames can outrun
                    # the FlushDone signal, and a block its own
                    # MasterControl has not accepted may be struck from
                    # the round with drop_ops — a slave recovers from
                    # that by eviction + Restart, but nobody can
                    # restart the master.
                    total = round_state.batch_total.get(machine_id)
                    if total is not None:
                        frames = round_state.batch_frames.get(machine_id, {})
                        if len(frames) == total:
                            count = sum(frames.values())
                speculated = True
            if count is None:
                return  # flush not seen yet
            block = sorted(
                key for key in round_state.received if key.machine_id == machine_id
            )
            if len(block) < count:
                return  # ops still in flight (or awaiting a resend)
            self._apply_block(round_state, machine_id, block[:count], speculated)

    def _apply_block(
        self,
        round_state: RoundState,
        machine_id: str,
        block: list[OpKey],
        speculated: bool,
    ) -> None:
        node = self.node
        profiler = node.profiler
        if profiler.enabled:
            _t0 = profiler.begin()
        decoded = []
        object_ids: set[str] = set()
        for key in block:
            entry = self.in_flight.get(key)
            if entry is not None:
                op = entry.op
                node.metrics.decode_cache_hits += 1
            else:
                op = round_state.decoded.get(key)
                if op is None:
                    op = decode_op(round_state.received[key])
                    round_state.decoded[key] = op
                    node.metrics.decode_cache_misses += 1
                else:
                    node.metrics.decode_cache_hits += 1
            decoded.append((key, op))
            object_ids |= op.object_ids()
        logged: list[tuple] = []
        with node.read_locks.writing(sorted(object_ids)):
            for key, op in decoded:
                result = op.execute(node.model.committed)
                node.model.record_completed(
                    CompletedEntry(key, op, result, node.scheduler.now())
                )
                logged.append(
                    (
                        key.machine_id,
                        key.op_number,
                        round_state.received[key],
                        result,
                        node.scheduler.now(),
                    )
                )
                node.trace(Tracer.COMMIT, key=str(key), ok=result)
                if result and key.machine_id != node.machine_id:
                    round_state.stream_remote_touched |= op.object_ids()
                if key in self.in_flight:
                    entry = self.in_flight.pop(key)
                    entry.executions += 1
                    node.metrics.record_execution(key)
                    self.pending_completions.append((entry, result))
                    if result:
                        node.metrics.ops_committed_ok += 1
                    else:
                        node.metrics.ops_committed_failed += 1
                        if entry.issue_result:
                            node.metrics.conflicts += 1
            node.model.committed.mark_dirty(object_ids)
        # Each block hits the WAL the instant it commits, not at round
        # finalization: the streaming apply spreads commits across
        # (virtual) time, and durable state must replay to exactly the
        # live committed state at every instant — a crash between
        # blocks then recovers the committed prefix it actually holds.
        node.log_committed_round(
            round_state.round_id,
            logged,
            node.completed_offset + node.model.completed_count,
        )
        self.refresh_backlog |= object_ids
        round_state.stream_done[machine_id] = len(block)
        if speculated:
            round_state.speculative = True
            node.metrics.blocks_streamed += 1
        if profiler.enabled:
            profiler.end("apply", _t0)
        if not block:
            return  # empty block: no CPU to charge, keep streaming
        # Charge the block's apply CPU before the next block may start
        # (the base setup cost is charged once, on the first block).
        cost = node.config.apply_cpu(len(block))
        if len(round_state.stream_done) > 1:
            cost = max(0.0, cost - node.config.apply_cpu(0))
        round_state.stream_busy = True

        def unlock() -> None:
            round_state.stream_busy = False
            if self.rounds.get(round_state.round_id) is not round_state:
                return  # restart/reset dropped the round
            if self.evicted or round_state.applied or round_state.done:
                return
            self._advance_stream(round_state)

        node.scheduler.call_later(cost, unlock)

    def _finalize_stream(self, round_state: RoundState) -> None:
        """All blocks committed: log the round, ack, refresh the guess."""
        node = self.node
        if round_state.missing_timer is not None:
            round_state.missing_timer.cancel()  # type: ignore[attr-defined]
            round_state.missing_timer = None
        round_state.counts = dict(round_state.stream_done)
        round_state.applied = True
        # Every block was WAL-logged as it committed (_apply_block);
        # nothing further to persist before the ack.
        if node.signals_mesh.faults.crash_at_commit(
            node.machine_id, round_state.round_id
        ):
            node.trace(
                Tracer.RECOVERY, action="crash_at_commit", round=round_state.round_id
            )
            node.halt()
            return
        ack_counts = (
            tuple(sorted(round_state.stream_done.items()))
            if round_state.speculative
            else None
        )
        node.broadcast_signal(
            msg.ApplyAck(round_state.round_id, node.machine_id, ack_counts)
        )
        remote_touched = round_state.stream_remote_touched
        round_state.stream_remote_touched = set()
        self._update_guess(round_state, remote_touched)
        self._nudge_later_rounds(round_state.round_id)

    def _apply(self, round_state: RoundState) -> None:
        """Apply the consolidated list in lexicographic (machine, number) order."""
        node = self.node
        assert round_state.counts is not None
        profiler = node.profiler
        if profiler.enabled:
            _t0 = profiler.begin()
        keys = consolidated_order(node, round_state)
        object_ids: set[str] = set()
        decoded = []
        for key in keys:
            # Decode cache: our own in-flight ops still hold the
            # original operation tree (operations are immutable data),
            # and the per-round memo covers payloads a resend or replay
            # already decoded — only genuinely new payloads pay decode.
            entry = self.in_flight.get(key)
            if entry is not None:
                op = entry.op
                node.metrics.decode_cache_hits += 1
            else:
                op = round_state.decoded.get(key)
                if op is None:
                    op = decode_op(round_state.received[key])
                    round_state.decoded[key] = op
                    node.metrics.decode_cache_misses += 1
                else:
                    node.metrics.decode_cache_hits += 1
            decoded.append((key, op))
            object_ids |= op.object_ids()
        remote_touched: set[str] = set()
        logged: list[tuple] = []
        with node.read_locks.writing(sorted(object_ids)):
            for key, op in decoded:
                result = op.execute(node.model.committed)
                node.model.record_completed(
                    CompletedEntry(key, op, result, node.scheduler.now())
                )
                logged.append(
                    (
                        key.machine_id,
                        key.op_number,
                        round_state.received[key],
                        result,
                        node.scheduler.now(),
                    )
                )
                node.trace(Tracer.COMMIT, key=str(key), ok=result)
                if result and key.machine_id != node.machine_id:
                    remote_touched |= op.object_ids()
                if key in self.in_flight:
                    entry = self.in_flight.pop(key)
                    entry.executions += 1
                    node.metrics.record_execution(key)
                    self.pending_completions.append((entry, result))
                    if result:
                        node.metrics.ops_committed_ok += 1
                    else:
                        node.metrics.ops_committed_failed += 1
                        if entry.issue_result:
                            node.metrics.conflicts += 1
            # Version bookkeeping: these are exactly the committed-store
            # ids this round may have mutated — the delta guess-refresh
            # and the version-keyed snapshot cache both key off them.
            node.model.committed.mark_dirty(object_ids)
        self.refresh_backlog |= object_ids
        round_state.applied = True
        if profiler.enabled:
            profiler.end("apply", _t0)
        # Write-ahead ordering: the committed round reaches the durable
        # log before this machine acknowledges it, so an acked round is
        # always recoverable after a crash.
        completed_global = node.completed_offset + node.model.completed_count
        node.log_committed_round(round_state.round_id, logged, completed_global)
        if node.signals_mesh.faults.crash_at_commit(
            node.machine_id, round_state.round_id
        ):
            # Crash-at-commit-point fault: die after the log append,
            # before the ApplyAck — the master will remove us; recovery
            # restarts from snapshot + WAL.
            node.trace(
                Tracer.RECOVERY, action="crash_at_commit", round=round_state.round_id
            )
            node.halt()
            return

        # A speculative commit advertises the counts it used, so the
        # master can validate them against the authoritative ones.
        ack_counts = (
            tuple(sorted(round_state.counts.items()))
            if round_state.speculative
            else None
        )

        def ack_and_update() -> None:
            if node.state == node.STATE_STOPPED:  # crashed before the ack fired
                return
            node.broadcast_signal(
                msg.ApplyAck(round_state.round_id, node.machine_id, ack_counts)
            )
            self._update_guess(round_state, remote_touched)

        node.scheduler.call_later(node.config.apply_cpu(len(decoded)), ack_and_update)
        # A pipelined later round may already be fully collected.
        self._nudge_later_rounds(round_state.round_id)

    def _update_guess(
        self,
        round_state: RoundState,
        remote_touched: set[str] = frozenset(),
    ) -> None:
        """Copy committed → guess, run completions, re-apply pending ops.

        The copy is a **delta refresh**: only committed-store ids the
        applied-but-unrefreshed rounds touched (``refresh_backlog`` —
        with pipelining that can cover several rounds at once, exactly
        like the naive copy of the *current* committed store did),
        objects the guess store dirtied replaying pending ops, and
        membership changes are copied — O(touched state) per round
        instead of the paper's literal O(total state) full copy
        (``delta_refresh=False`` restores the latter;
        ``refresh_oracle=True`` cross-checks the delta against a full
        shadow rebuild every round).
        """
        node = self.node
        model = node.model
        touched = self.refresh_backlog
        self.refresh_backlog = set()
        node.enter_window("update")
        profiler = node.profiler
        if profiler.enabled:
            _t0 = profiler.begin()
        if node.config.delta_refresh:
            candidates = model.guess.refresh_candidates(model.committed, touched)
            with node.read_locks.writing(sorted(candidates)):
                copied = model.guess.refresh_delta_from(model.committed, touched)
        else:
            with node.read_locks.writing(model.committed.ids()):
                copied = model.guess.refresh_from(model.committed)
        node.metrics.refresh_rounds += 1
        node.metrics.refresh_objects_copied += copied
        node.metrics.refresh_objects_live += len(model.committed)
        node.trace(Tracer.REFRESH, round=round_state.round_id, copied=copied)
        completions = self.pending_completions
        self.pending_completions = []
        now = node.scheduler.now()
        for entry, result in completions:
            # Ops this entry absorbed during flush compaction complete
            # here too, with the superseder's commit result; they were
            # issued earlier, so their completions fire first.
            for absorbed in entry.absorbed:
                node.metrics.commit_latency_total += now - absorbed.issued_at
                node.metrics.commit_latency_count += 1
                if absorbed.completion is not None:
                    absorbed.completion(result)
                node.trace(Tracer.COMPLETION, key=str(absorbed.key), ok=result)
            node.metrics.commit_latency_total += now - entry.issued_at
            node.metrics.commit_latency_count += 1
            if entry.completion is not None:
                entry.completion(result)
            node.trace(Tracer.COMPLETION, key=str(entry.key), ok=result)
        for entry in node.model.pending:
            entry.op.execute(node.model.guess)  # result deliberately ignored
            node.model.guess.mark_dirty(entry.op.object_ids())
            entry.executions += 1
            node.metrics.record_execution(entry.key)
        if profiler.enabled:
            profiler.end("refresh", _t0)
        if node.config.refresh_oracle and not node.model.check_convergence_invariant():
            from repro.errors import RuntimeFailure

            raise RuntimeFailure(
                f"delta-refresh divergence on {node.machine_id} after round "
                f"{round_state.round_id}: refreshed sg != [P](sc)"
            )
        node.fire_remote_updates(remote_touched)

        def end_update() -> None:
            node.exit_window("update")

        node.scheduler.call_later(
            node.config.update_cpu(len(node.model.pending)), end_update
        )

    # -- stage 3 and recovery -------------------------------------------------------

    def _on_sync_complete(self, done: msg.SyncComplete) -> None:
        self.last_done_round = max(self.last_done_round, done.round_id)
        round_state = self.rounds.pop(done.round_id, None)
        missed_commit = round_state is not None and not round_state.applied
        if round_state is not None:
            round_state.done = True
            if round_state.missing_timer is not None:
                round_state.missing_timer.cancel()  # type: ignore[attr-defined]
        self.last_flush.pop(done.round_id, None)
        self.op_buffer.pop(done.round_id, None)
        if missed_commit:
            # The cluster committed a round we never applied (the master
            # can only finish a round after our ApplyAck or our removal,
            # so our ParticipantRemoved must have been lost).  Our
            # committed prefix now has a hole: skipping ahead to later
            # pipelined rounds would durably log a gapped history, so
            # stop applying until the master's Restart rejoins us.
            self._latch_evicted(suspect=bool(round_state.stream_done))
            self.node.trace(
                Tracer.RECOVERY, action="missed_commit", round=done.round_id
            )
            return
        self._nudge_later_rounds(done.round_id)

    def _on_participant_removed(self, removed: msg.ParticipantRemoved) -> None:
        round_state = self.rounds.get(removed.round_id)
        if round_state is None:
            return
        # Any removal means the master's view of the round diverged
        # from the FlushDones we observed: block speculation stalls for
        # this round until the authoritative BeginApply arrives.
        round_state.removals_seen = True
        if (
            removed.drop_ops
            and not round_state.applied
            and removed.machine_id in round_state.stream_done
        ):
            # We already committed a block the cluster is dropping and
            # cannot take it back: latch evicted (the master's
            # fingerprint check or stall recovery restarts us).
            self._latch_evicted(suspect=True)
            self.node.trace(
                Tracer.RECOVERY,
                action="speculation_diverged",
                round=round_state.round_id,
            )
            return
        if removed.machine_id == self.node.machine_id:
            # We were removed while alive (our signals were lost).  The
            # round will commit everywhere without us, leaving a hole in
            # our prefix — applying later pipelined rounds over that
            # hole would durably log a gapped history, so stop applying
            # entirely; the Restart that follows rejoins us cleanly.
            round_state.done = True
            self._latch_evicted()
            self.node.trace(
                Tracer.RECOVERY, action="evicted", round=round_state.round_id
            )
            return
        if removed.drop_ops:
            # Removed before its flush was published: its ops are not
            # part of the round anywhere.
            round_state.dropped.add(removed.machine_id)
            round_state.received = {
                key: payload
                for key, payload in round_state.received.items()
                if key.machine_id != removed.machine_id
            }
            if round_state.counts is not None:
                round_state.counts.pop(removed.machine_id, None)
                self._try_apply(round_state)
        else:
            # Its flush is in the published counts, so its ops stay in
            # the consolidated list on every machine — dropping them
            # locally would diverge from nodes that already applied.
            # The removal only means it will not acknowledge.
            self._try_apply(round_state)

    # -- helpers -----------------------------------------------------------------

    def _ensure_round(self, round_id: int, order: tuple[str, ...]) -> RoundState | None:
        if self.node.machine_id not in order:
            return None
        if round_id <= self.last_done_round:
            # A resent signal arrived after the round's SyncComplete
            # popped it; recreating it would make an empty zombie round
            # that blocks every later round's in-order apply.
            return None
        if round_id not in self.rounds:
            state = RoundState(round_id, order)
            buffered = self.op_buffer.pop(round_id, {})
            state.received.update(buffered)
            self.rounds[round_id] = state
        return self.rounds[round_id]

    def reset(self) -> None:
        """Drop all protocol state (used on restart)."""
        for round_state in self.rounds.values():
            if round_state.missing_timer is not None:
                round_state.missing_timer.cancel()  # type: ignore[attr-defined]
            if round_state.flush_timer is not None:
                round_state.flush_timer.cancel()  # type: ignore[attr-defined]
        self.rounds.clear()
        self.op_buffer.clear()
        self.refresh_backlog.clear()
        self.last_flush.clear()
        self.in_flight.clear()
        self.pending_completions.clear()
        self.evicted = False


class MasterControl:
    """Master-side round management, membership and stall recovery.

    Rounds live in ``inflight`` keyed by round id.  Without pipelining
    (``SyncConfig.pipeline_depth == 1``) at most one round is open at a
    time, reproducing the paper's strictly phased protocol.  With depth
    *d* the master opens collection for round *k+1* as soon as round
    *k* reaches its apply stage, keeping at most *d* rounds in flight;
    at most one round is ever in the flush stage, and rounds always
    finish (``SyncComplete``) in round-id order.
    """

    def __init__(self, node: "GuesstimateNode"):
        self.node = node
        self.participants: list[str] = [node.machine_id]
        self.round_counter = 0
        self.inflight: dict[int, _MasterRound] = {}
        self.join_queue: list[str] = []
        self.awaiting_ack: set[str] = set()
        self.awaiting_restart: set[str] = set()
        #: joiners that announced durable recovered state: id -> global
        #: |C| they already hold (served a backlog Welcome if possible)
        self.recovered_counts: dict[str, int] = {}
        #: id -> (machine_id, op_number) tail key of that recovered
        #: history, cross-checked before a delta Welcome is served
        self.recovered_tails: dict[str, tuple] = {}
        self._progress_seq = 0
        self._next_round_timer: object | None = None
        self._stopped = False
        self._halted = False  # hard stop (crash): no recovery actions either
        self.running = False  # set once start() schedules the first round
        #: pre-announced next round (scheduled_rounds): (id, order, start_at)
        self._announced: tuple[int, tuple[str, ...], float] | None = None
        #: FlushDones that beat the announced round's start (stashed
        #: until start_round materializes the round): id -> {machine: count}
        self._early_flush_done: dict[int, dict[str, int]] = {}
        #: machines whose speculative commit diverged from the published
        #: counts — their durable history is NOT a prefix of the global
        #: order, so their next Welcome must be a full snapshot (which
        #: rebases their log) rather than a backlog extension
        self.tainted: set[str] = set()

    # -- round bookkeeping -----------------------------------------------------------

    @property
    def current(self) -> "_MasterRound | None":
        """The oldest in-flight round (None when the pipeline is idle)."""
        if not self.inflight:
            return None
        return self.inflight[min(self.inflight)]

    @property
    def collecting(self) -> "_MasterRound | None":
        """The round currently in its flush stage, if any (at most one)."""
        for round_ in self.inflight.values():
            if round_.stage == "flush":
                return round_
        return None

    @property
    def pipeline_depth(self) -> int:
        return self.node.config.sync.pipeline_depth

    # -- round lifecycle -----------------------------------------------------------

    def start(self, delay: float | None = None) -> None:
        """Schedule the first (or next) synchronization round."""
        if self._stopped:
            return
        self.running = True
        interval = self.node.config.sync_interval if delay is None else delay
        if self._next_round_timer is not None:
            self._next_round_timer.cancel()  # type: ignore[attr-defined]
        self._next_round_timer = self.node.scheduler.call_later(
            interval, self.start_round
        )
        self._maybe_preannounce(interval)

    def stop(self, hard: bool = False) -> None:
        """Stop initiating rounds.  ``hard`` (crash simulation) also
        silences the watchdog; a graceful stop keeps driving recovery
        for rounds already in flight, including a pre-announced round
        whose participants are already committed to flushing."""
        self._stopped = True
        if hard:
            self._halted = True
        if self._next_round_timer is not None and (hard or self._announced is None):
            self._next_round_timer.cancel()  # type: ignore[attr-defined]

    def _schedule_next_round(self) -> None:
        """Arm the next-round timer if the pipeline has room.

        Joins are only processed on an idle pipeline (the paper
        welcomes between rounds), so while joiners wait the pipeline is
        drained rather than extended.
        """
        if self._stopped or not self.running:
            return
        if self._next_round_timer is not None:
            return
        if self.collecting is not None or len(self.inflight) >= self.pipeline_depth:
            return
        if self.inflight and (self.join_queue or self.awaiting_ack):
            return  # drain so the joiners can be welcomed
        self._next_round_timer = self.node.scheduler.call_later(
            self.node.config.sync_interval, self.start_round
        )
        self._maybe_preannounce(self.node.config.sync_interval)

    def _maybe_preannounce(self, delay: float) -> None:
        """Pre-announce the next round (``SyncConfig.scheduled_rounds``).

        The StartSync for the upcoming round is broadcast *now*, during
        the idle inter-round gap, carrying the instant the round will
        start; every participant (master included, via the synchronous
        self-dispatch) arms a flush timer for that instant.  When the
        master's own round timer fires it reuses the announced id and
        order instead of broadcasting again — the signal's network hop
        rides the gap, not the round.

        Announcing is skipped while membership is in motion: the
        announced order is frozen, so joiners would be left out and the
        paper's welcome-between-rounds rule could not hold.
        """
        config = self.node.config
        if not config.sync.scheduled_rounds or config.collection_mode != "concurrent":
            return
        if self._stopped or self.join_queue or self.awaiting_ack:
            return
        round_id = self.round_counter + 1
        order = tuple(self.participants)
        start_at = self.node.scheduler.now() + delay
        self._announced = (round_id, order, start_at)
        self.node.metrics.rounds_preannounced += 1
        self.node.broadcast_signal(msg.StartSync(round_id, order, True, start_at))

    def start_round(self) -> None:
        self._next_round_timer = None
        announced = self._announced
        self._announced = None
        if self._stopped and announced is None:
            return
        if self.collecting is not None or len(self.inflight) >= self.pipeline_depth:
            return  # raced; the blocking round reschedules as it advances
        if announced is None:
            if not self.inflight:
                self._process_membership()
            if len(self.participants) < 1:  # pragma: no cover - master present
                self.start()
                return
            self.round_counter += 1
            order = tuple(self.participants)
        else:
            # The announced order is frozen — participants flushed (or
            # are flushing) against it.  Membership changes since the
            # announcement wait for the next round; departures are
            # reconciled below via the normal removal path.
            self.round_counter, order, _ = announced
        from repro.runtime.metrics import SyncRecord

        mode = self.node.config.collection_mode
        concurrent = mode == "concurrent"
        round_ = _MasterRound(
            round_id=self.round_counter,
            order=order,
            parallel=concurrent,
            record=SyncRecord(
                round_id=self.round_counter,
                started_at=self.node.scheduler.now(),
                participants=len(order),
                collection=mode,
                pipelined=bool(self.inflight),
            ),
        )
        self.inflight[self.round_counter] = round_
        self.node.trace(Tracer.SYNC_START, round=self.round_counter, users=len(order))
        if announced is None:
            self.node.broadcast_signal(
                msg.StartSync(self.round_counter, order, concurrent)
            )
        if not concurrent:
            self._grant_turn(round_)
        self._arm_watchdog()
        if announced is not None:
            stashed = self._early_flush_done.pop(self.round_counter, None)
            self._early_flush_done.clear()  # anything else is stale
            current = list(self.participants)
            for ghost in order:
                if ghost not in current:
                    self._remove_from_round(round_, ghost)
            if stashed and self.round_counter in self.inflight:
                for machine_id, count in stashed.items():
                    self._on_flush_done(
                        msg.FlushDone(self.round_counter, machine_id, count)
                    )

    def _grant_turn(self, round_: "_MasterRound") -> None:
        """Grant the flush turn to the next machine in order."""
        while round_.turn_index < len(round_.order):
            machine_id = round_.order[round_.turn_index]
            if machine_id in round_.removed:
                round_.turn_index += 1
                continue
            turn = msg.YourTurn(round_.round_id, machine_id, round_.order)
            if machine_id == self.node.machine_id:
                self.node.synchronizer.handle_signal(turn)
            else:
                self.node.signals_mesh.send(self.node.machine_id, machine_id, turn)
            return
        self._begin_apply(round_)

    def _begin_apply(self, round_: "_MasterRound") -> None:
        round_.stage = "apply"
        counts = tuple(sorted(round_.counts.items()))
        round_.record.ops_committed = sum(round_.counts.values())
        self.node.broadcast_signal(
            msg.BeginApply(round_.round_id, round_.order, counts)
        )
        # Speculative acks that raced ahead of our own count assembly
        # were parked; validate them against the counts just published.
        early = round_.early_acks
        round_.early_acks = {}
        for machine_id, ack_counts in early.items():
            self._on_apply_ack(
                msg.ApplyAck(round_.round_id, machine_id, ack_counts)
            )
        self._progress()
        # Pipelining: collection of the next round may overlap this
        # round's apply/ack latency.
        self._schedule_next_round()

    # -- signal handling (master consumes these) -------------------------------------

    def handle_signal(self, payload: object) -> None:
        if isinstance(payload, msg.FlushDone):
            self._on_flush_done(payload)
        elif isinstance(payload, msg.ApplyAck):
            self._on_apply_ack(payload)
        elif isinstance(payload, msg.Hello):
            self._on_hello(payload)
        elif isinstance(payload, msg.WelcomeAck):
            self._on_welcome_ack(payload)
        elif isinstance(payload, msg.Goodbye):
            self._on_goodbye(payload)

    def _on_flush_done(self, done: msg.FlushDone) -> None:
        round_ = self.inflight.get(done.round_id)
        if round_ is None:
            if (
                self._announced is not None
                and done.round_id == self._announced[0]
            ):
                # A flush for the pre-announced round beat our own round
                # timer; keep the count until start_round materializes it.
                self._early_flush_done.setdefault(done.round_id, {})[
                    done.machine_id
                ] = done.count
            return
        if done.machine_id in round_.counts or done.machine_id in round_.removed:
            return
        round_.counts[done.machine_id] = done.count
        self._progress()
        if round_.stage != "flush":
            return
        if round_.parallel:
            expected = set(round_.order) - round_.removed
            if expected <= set(round_.counts):
                self._begin_apply(round_)
        elif (
            round_.turn_index < len(round_.order)
            and round_.order[round_.turn_index] == done.machine_id
        ):
            round_.turn_index += 1
            self._grant_turn(round_)

    def _on_apply_ack(self, ack: msg.ApplyAck) -> None:
        round_ = self.inflight.get(ack.round_id)
        if round_ is None:
            return
        if ack.machine_id in round_.removed:
            return
        if round_.stage == "flush":
            # Only a speculative commit can ack before we publish the
            # counts; park it for validation at _begin_apply.
            round_.early_acks[ack.machine_id] = ack.counts
            return
        if ack.counts is not None and tuple(ack.counts) != tuple(
            sorted(round_.counts.items())
        ):
            # The speculator committed a round composition we did not
            # publish: its durable history diverged from the global
            # order.  Remove it and force a snapshot re-welcome.
            self.node.trace(
                Tracer.RECOVERY,
                action="speculation_mismatch",
                machine=ack.machine_id,
                round=ack.round_id,
            )
            round_.record.removals += 1
            self.tainted.add(ack.machine_id)
            self._remove_machine(ack.machine_id, restart=True)
            return
        round_.acks.add(ack.machine_id)
        self._progress()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        """Finish every fully-acked round, strictly in round-id order."""
        finished = False
        while self.inflight:
            round_ = self.inflight[min(self.inflight)]
            expected = set(round_.order) - round_.removed
            if round_.stage != "apply" or not expected <= round_.acks:
                break
            round_.record.finished_at = self.node.scheduler.now()
            self.node.metrics_system.sync_records.append(round_.record)
            self.node.trace(
                Tracer.SYNC_DONE,
                round=round_.round_id,
                duration=round(round_.record.duration, 4),
            )
            self.node.broadcast_signal(msg.SyncComplete(round_.round_id))
            del self.inflight[round_.round_id]
            finished = True
        if not finished:
            return
        self._nudge_restarts()
        if (
            (self.awaiting_ack or self.join_queue)
            and not self.inflight
            and self._announced is None
        ):
            # Re-welcome unacked joiners and serve Hellos a pending
            # announcement deferred (their Welcomes must postdate the
            # announced round, which has finished by now).
            self._process_membership()
        self._schedule_next_round()

    # -- membership ---------------------------------------------------------------------

    def _on_hello(self, hello: msg.Hello) -> None:
        self.awaiting_restart.discard(hello.machine_id)
        if hello.recovered_count is not None:
            self.recovered_counts[hello.machine_id] = hello.recovered_count
            if hello.recovered_tail is not None:
                self.recovered_tails[hello.machine_id] = tuple(
                    hello.recovered_tail
                )
            else:
                self.recovered_tails.pop(hello.machine_id, None)
        else:
            self.recovered_counts.pop(hello.machine_id, None)
            self.recovered_tails.pop(hello.machine_id, None)
        if hello.machine_id in self.participants:
            # A standing participant saying Hello has rebooted out from
            # under us (silent crash, quick recovery): its old standing
            # is stale, so fold it back in through the join path.
            self._remove_machine(hello.machine_id, restart=False)
        if hello.machine_id not in self.join_queue:
            self.join_queue.append(hello.machine_id)
        # A join between rounds can be processed immediately — but a
        # pre-announced round counts as in flight: its order is frozen,
        # so a Welcome served now would predate its commits and the
        # joiner would re-enter with a hole in its prefix.
        if not self.inflight and self._announced is None:
            self._process_membership()

    def _on_welcome_ack(self, ack: msg.WelcomeAck) -> None:
        if ack.machine_id not in self.awaiting_ack:
            return
        if self.inflight or self._announced is not None:
            # The ack raced rounds this machine is not part of (a
            # pre-announced round's order is frozen, so it counts too):
            # its Welcome predates their commits, so admitting it now
            # would leave a permanent hole in its committed sequence.
            # Keep it queued; _maybe_finish re-welcomes it with a fresh
            # snapshot once the pipeline drains (loading is idempotent
            # and the joiner catches up on the missed suffix).
            return
        self.awaiting_ack.discard(ack.machine_id)
        self.recovered_counts.pop(ack.machine_id, None)
        self.recovered_tails.pop(ack.machine_id, None)
        # An acked Welcome was a snapshot for tainted machines, which
        # rebases their divergent durable log — the taint is cleared.
        self.tainted.discard(ack.machine_id)
        if ack.machine_id not in self.participants:
            self.participants.append(ack.machine_id)
        self.node.trace(Tracer.MEMBERSHIP, joined=ack.machine_id)

    def _on_goodbye(self, goodbye: msg.Goodbye) -> None:
        if goodbye.machine_id in self.participants:
            self.participants.remove(goodbye.machine_id)
            self.node.trace(Tracer.MEMBERSHIP, left=goodbye.machine_id)
        # Treat a mid-round departure like a stage-appropriate removal
        # in every in-flight round.
        self._remove_machine(goodbye.machine_id, restart=False)

    def _process_membership(self) -> None:
        """Welcome queued joiners (between rounds, as the paper does).

        Machines that never acknowledged a previous Welcome (the
        message may have been lost) are re-welcomed with a fresh
        snapshot — loading it is idempotent on the joiner.
        """
        while self.join_queue:
            self.awaiting_ack.add(self.join_queue.pop(0))
        for machine_id in sorted(self.awaiting_ack):
            welcome = self._build_welcome(machine_id)
            self.node.signals_mesh.send(self.node.machine_id, machine_id, welcome)

    def _build_welcome(self, machine_id: str) -> msg.Welcome:
        """Full-snapshot Welcome, or a committed-op backlog when the
        joiner announced durable recovered state this master can extend
        (its recovered |C| falls inside our held history and its tail
        key matches our entry at that position — a count alone cannot
        prove the recovered history is a prefix of the global order)."""
        node = self.node
        recovered_count = self.recovered_counts.get(machine_id)
        if machine_id in self.tainted:
            # A divergent speculative commit is in its durable log: a
            # backlog Welcome would extend the divergence (a matching
            # tail cannot prove anything about the rounds around the
            # fork).  Only a snapshot, which rebases the log, is safe.
            recovered_count = None
        offset = node.completed_offset
        total = offset + node.model.completed_count
        op_floor = node.model.op_high_water.get(machine_id, 0)
        if recovered_count is not None and not self._tail_matches(
            machine_id, recovered_count, offset
        ):
            # The joiner's recovered history is NOT the global prefix it
            # claims (e.g. it logged pipelined rounds around a hole
            # before crashing).  Serving a backlog would cement the
            # divergence; fall back to the full snapshot, which also
            # rebases its durable log to a clean prefix.
            self.node.trace(
                Tracer.RECOVERY, action="stale_recovery", machine=machine_id
            )
            recovered_count = None
        if recovered_count is not None and offset <= recovered_count <= total:
            backlog = tuple(
                (
                    entry.key.machine_id,
                    entry.key.op_number,
                    encode_op(entry.op),
                    entry.result,
                    entry.committed_at,
                )
                for entry in node.model.completed[recovered_count - offset :]
            )
            return msg.Welcome(
                machine_id=machine_id,
                master_id=node.machine_id,
                snapshot={},
                completed_count=total,
                backlog_from=recovered_count,
                backlog=backlog,
                op_floor=op_floor,
            )
        return msg.Welcome(
            machine_id=machine_id,
            master_id=node.machine_id,
            snapshot=node.model.committed.snapshot_states(),
            completed_count=node.model.completed_count,
            op_floor=op_floor,
        )

    def _tail_matches(
        self, machine_id: str, recovered_count: int, offset: int
    ) -> bool:
        """True when the joiner's announced tail key agrees with our
        completed entry at its claimed position (or no tail to check)."""
        tail = self.recovered_tails.get(machine_id)
        if tail is None:
            return True  # snapshot-only recovery holds no entries
        index = recovered_count - offset - 1
        if index < 0 or index >= self.node.model.completed_count:
            return True  # outside our history; the bounds check decides
        entry = self.node.model.completed[index]
        return (entry.key.machine_id, entry.key.op_number) == tail

    def _nudge_restarts(self) -> None:
        """Re-send Restart to machines that have not re-entered yet."""
        for machine_id in list(self.awaiting_restart):
            if self.node.signals_mesh.is_member(machine_id):
                self.node.signals_mesh.send(
                    self.node.machine_id, machine_id, msg.Restart(machine_id)
                )

    # -- stall detection and recovery ------------------------------------------------------

    def _progress(self) -> None:
        self._progress_seq += 1
        self._arm_watchdog()

    def _arm_watchdog(self) -> None:
        # A gracefully stopped master keeps watching rounds still in
        # flight (they must drain); a halted (crashed) one goes silent.
        if not self.inflight or self._halted:
            return
        seq = self._progress_seq
        self.node.scheduler.call_later(
            self.node.config.stall_timeout, lambda: self._watchdog(seq)
        )

    def _watchdog(self, seq: int) -> None:
        if self._halted or seq != self._progress_seq or not self.inflight:
            return
        for round_id in sorted(self.inflight):
            round_ = self.inflight.get(round_id)
            if round_ is None:
                continue  # finished while we handled an earlier round
            if round_.stage == "flush":
                if round_.parallel:
                    expected = set(round_.order) - round_.removed
                    for stalled in sorted(expected - set(round_.counts)):
                        if round_.stage != "flush":
                            break  # a removal completed the flush stage
                        self._handle_stall(round_, stalled, stage="flush")
                elif round_.turn_index < len(round_.order):
                    stalled = round_.order[round_.turn_index]
                    self._handle_stall(round_, stalled, stage="flush")
            else:
                expected = set(round_.order) - round_.removed
                for stalled in sorted(expected - round_.acks):
                    if round_id not in self.inflight:
                        break  # the round finished while we were removing
                    self._handle_stall(round_, stalled, stage="apply")
        self._maybe_finish()
        if self.inflight:
            self._progress()  # restart the clock after acting

    def _handle_stall(
        self, round_: "_MasterRound", machine_id: str, stage: str
    ) -> None:
        strikes = round_.strikes.get(machine_id, 0) + 1
        round_.strikes[machine_id] = strikes
        is_self = machine_id == self.node.machine_id
        # The master can never strike out its own machine: a removed
        # node must re-join via Hello, but Hello is a plain broadcast
        # that never reaches this (co-located) MasterControl, so a
        # self-removal wedges the master's node permanently.  Keep
        # resending to ourselves instead.
        resend = strikes == 1 or is_self
        self.node.trace(
            Tracer.RECOVERY,
            action="resend" if resend else "remove",
            machine=machine_id,
            stage=stage,
        )
        if resend:
            round_.record.resends += 1
            if stage == "flush":
                payload: object = msg.YourTurn(
                    round_.round_id, machine_id, round_.order
                )
            else:
                counts = tuple(sorted(round_.counts.items()))
                payload = msg.BeginApply(round_.round_id, round_.order, counts)
            if is_self:
                # Self-addressed mesh sends arrive with delivery latency
                # and can land *after* the round's SyncComplete, out of
                # order with every other self-dispatched signal; keep
                # master-to-self delivery synchronous (as _grant_turn
                # does).
                self.node.synchronizer.handle_signal(payload)
            else:
                self.node.signals_mesh.send(
                    self.node.machine_id, machine_id, payload
                )
        else:
            round_.record.removals += 1
            self._remove_machine(machine_id, restart=True)

    def _remove_machine(self, machine_id: str, restart: bool) -> None:
        """Remove a machine from the participant list and from *every*
        in-flight round (a removed machine must re-join; it cannot keep
        participating in later pipelined rounds)."""
        if machine_id in self.participants:
            self.participants.remove(machine_id)
        if restart:
            self.awaiting_restart.add(machine_id)
            if self.node.signals_mesh.is_member(machine_id):
                self.node.signals_mesh.send(
                    self.node.machine_id, machine_id, msg.Restart(machine_id)
                )
        for round_id in sorted(self.inflight):
            round_ = self.inflight.get(round_id)
            if round_ is not None:
                self._remove_from_round(round_, machine_id)
        self._maybe_finish()

    def _remove_from_round(
        self, round_: "_MasterRound", machine_id: str
    ) -> None:
        if machine_id in round_.removed or machine_id not in set(round_.order):
            return
        round_.removed.add(machine_id)
        # If our own synchronizer already stream-committed this
        # machine's block (speculative apply), the ops cannot be taken
        # back: they must stay in the round.  That is safe to promise —
        # a committed block means we hold every one of its ops and can
        # serve any resend — whereas dropping it would force the master
        # to evict itself, and nobody can restart the master.
        sync_round = self.node.synchronizer.rounds.get(round_.round_id)
        streamed_here = (
            sync_round is not None and machine_id in sync_round.stream_done
        )
        drop_ops = machine_id not in round_.counts and not streamed_here
        if round_.stage == "flush":
            if streamed_here:
                # Counts are not published yet; pin the committed
                # block's count so BeginApply matches what we applied.
                round_.counts[machine_id] = sync_round.stream_done[machine_id]
            else:
                # The machine's flush (if any) can still be excluded
                # consistently everywhere.
                round_.counts.pop(machine_id, None)
        # After BeginApply the counts are immutable: some machines may
        # already have committed with them, so the removal must not
        # change the round's consolidated list.
        self.node.broadcast_signal(
            msg.ParticipantRemoved(round_.round_id, machine_id, drop_ops)
        )
        if round_.stage == "flush":
            if round_.parallel:
                expected = set(round_.order) - round_.removed
                if expected <= set(round_.counts):
                    self._begin_apply(round_)
            elif (
                round_.turn_index < len(round_.order)
                and round_.order[round_.turn_index] == machine_id
            ):
                round_.turn_index += 1
                self._grant_turn(round_)


@dataclass(slots=True)
class _MasterRound:
    """Master-side bookkeeping for one in-flight round."""

    round_id: int
    order: tuple[str, ...]
    record: object  # SyncRecord (kept loose to avoid a metrics import cycle)
    parallel: bool = False
    stage: str = "flush"
    turn_index: int = 0
    counts: dict[str, int] = field(default_factory=dict)
    acks: set[str] = field(default_factory=set)
    removed: set[str] = field(default_factory=set)
    strikes: dict[str, int] = field(default_factory=dict)
    #: speculative ApplyAcks that arrived before the counts were
    #: published: machine -> advertised counts fingerprint
    early_acks: dict[str, tuple | None] = field(default_factory=dict)
