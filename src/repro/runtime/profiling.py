"""Phase-attributed wall-clock profiler for the commit round.

Every synchronization round spends its *wall* time (as opposed to the
simulator's virtual time) in four places:

* ``encode`` — serializing operations and protocol messages to the
  wire format (codec + framing);
* ``transport`` — pushing payloads through the broadcast channel
  (per-peer scheduling on the sim mesh, frame writes on sockets);
* ``apply`` — decoding and executing the consolidated operation list
  against the committed store;
* ``refresh`` — rebuilding the guesstimated state after apply (delta
  copy + pending replay + completions).

:class:`PhaseProfiler` attributes time to those phases with
``perf_counter`` spans.  The hooks in the synchronizer, node and mesh
are guarded by a single ``profiler.enabled`` flag test, and every node
defaults to the shared :data:`NULL_PROFILER` (disabled), so the
instrumentation costs one attribute load + branch per hook when off.

``roundprof`` (:mod:`repro.evalkit.experiments.roundprof`) attaches a
live profiler via :meth:`DistributedSystem.attach_profiler
<repro.runtime.system.DistributedSystem.attach_profiler>`, drives a
workload, and writes the per-phase breakdown to ``BENCH_phases.json``;
``docs/PROFILING.md`` explains how to read it.
"""

from __future__ import annotations

from time import perf_counter

#: The round phases, in pipeline order.
PHASES = ("encode", "transport", "apply", "refresh")


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per phase.

    Usage on a hot path (two lines, zero cost when disabled)::

        if profiler.enabled:
            _t0 = profiler.begin()
        ...work...
        if profiler.enabled:
            profiler.end("encode", _t0)
    """

    __slots__ = ("enabled", "seconds", "calls")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.seconds: dict[str, float] = dict.fromkeys(PHASES, 0.0)
        self.calls: dict[str, int] = dict.fromkeys(PHASES, 0)

    def begin(self) -> float:
        """Start a span; pass the returned stamp to :meth:`end`."""
        return perf_counter()

    def end(self, phase: str, started: float) -> None:
        """Close a span and charge it to ``phase``."""
        self.seconds[phase] += perf_counter() - started
        self.calls[phase] += 1

    def add(self, phase: str, seconds: float, calls: int = 1) -> None:
        """Charge pre-measured time (merging a sub-profile)."""
        self.seconds[phase] += seconds
        self.calls[phase] += calls

    def reset(self) -> None:
        for phase in PHASES:
            self.seconds[phase] = 0.0
            self.calls[phase] = 0

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Plain-dict view: phase -> {seconds, calls, mean_us}."""
        out: dict[str, dict[str, float]] = {}
        for phase in PHASES:
            calls = self.calls[phase]
            seconds = self.seconds[phase]
            out[phase] = {
                "seconds": seconds,
                "calls": calls,
                "mean_us": (seconds / calls * 1e6) if calls else 0.0,
            }
        return out


#: Shared disabled profiler: the default for every node, so hot-path
#: hooks reduce to one flag test.  Never enable this instance — attach
#: a fresh PhaseProfiler instead.
NULL_PROFILER = PhaseProfiler(enabled=False)
