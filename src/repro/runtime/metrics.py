"""Metrics collected by the runtime — the raw material of Figures 5-7.

Three levels:

* :class:`NodeMetrics` — per machine: issued/committed/conflicting
  operations, per-operation execution counts (the "at most three"
  bound), issue deferrals caused by blocked windows.
* :class:`SyncRecord` — one per synchronization round, recorded by the
  master: duration (all three stages), participants, recovery actions.
* :class:`SystemMetrics` — aggregates the above plus mesh counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.operations import OpKey
from repro.storage.wal import StorageStats


@dataclass(slots=True)
class SyncRecord:
    """Master-side record of one synchronization round."""

    round_id: int
    started_at: float
    finished_at: float = 0.0
    participants: int = 0
    ops_committed: int = 0
    resends: int = 0
    removals: int = 0
    #: stage-1 collection mode the round ran under
    collection: str = "sequential"
    #: True if collection began while an earlier round was still in flight
    pipelined: bool = False

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def recovered(self) -> bool:
        """True if the round needed any fault-recovery action."""
        return self.resends > 0 or self.removals > 0


@dataclass(slots=True)
class NodeMetrics:
    """Per-machine counters.

    ``__slots__``: these counters are bumped per message / per op in
    the synchronizer's hot loop, so attribute access is slot-indexed
    rather than a ``__dict__`` probe, and the synchronizer holds a
    direct reference to this object instead of going through the
    ``SystemMetrics.node()`` dict lookup on every increment.
    """

    machine_id: str
    ops_issued: int = 0
    ops_rejected_at_issue: int = 0
    ops_committed_ok: int = 0
    ops_committed_failed: int = 0
    conflicts: int = 0  # succeeded at issue, failed at commit
    deferred_issues: int = 0
    deferral_delay_total: float = 0.0
    restarts: int = 0
    #: OpBatch frames broadcast by this machine's flushes and resends
    op_batches_sent: int = 0
    executions: dict[OpKey, int] = field(default_factory=dict)
    commit_latency_total: float = 0.0  # issue -> completion, local ops only
    commit_latency_count: int = 0
    #: durability counters, shared with the node's storage backend
    #: (records/bytes appended, fsyncs, snapshots, recovery telemetry)
    storage: StorageStats = field(default_factory=StorageStats)
    #: crash recoveries that restored state from snapshot + WAL replay
    crash_recoveries: int = 0
    #: completed-sequence entries rebuilt by the last WAL replay
    recovery_replay_entries: int = 0
    #: guess refreshes run (one per applied round's update stage)
    refresh_rounds: int = 0
    #: objects actually copied committed -> guess across all refreshes;
    #: with delta refresh this is O(touched), the naive full copy makes
    #: it refresh_rounds * live objects
    refresh_objects_copied: int = 0
    #: sum over refreshes of the committed store's live object count —
    #: what the naive full copy would have copied (the A/B denominator)
    refresh_objects_live: int = 0
    #: wire-op decodes avoided by reusing the in-flight op tree or the
    #: per-round decode memo, vs. decodes actually performed
    decode_cache_hits: int = 0
    decode_cache_misses: int = 0
    #: pending ops coalesced away by flush compaction
    #: (``SyncConfig.compact_flush``): superseded by a later absorbing
    #: write to the same slot, so they never rode a round
    ops_compacted: int = 0
    #: rounds whose StartSync rode the idle gap
    #: (``SyncConfig.scheduled_rounds``); master-side counter
    rounds_preannounced: int = 0
    #: blocks committed by the streaming apply *before* the master's
    #: BeginApply pinned the authoritative counts
    #: (``SyncConfig.speculative_apply``)
    blocks_streamed: int = 0

    def record_execution(self, key: OpKey) -> None:
        self.executions[key] = self.executions.get(key, 0) + 1

    def execution_histogram(self) -> dict[int, int]:
        """Map execution-count -> number of operations."""
        histogram: dict[int, int] = {}
        for count in self.executions.values():
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    @property
    def mean_commit_latency(self) -> float:
        if self.commit_latency_count == 0:
            return 0.0
        return self.commit_latency_total / self.commit_latency_count


@dataclass
class SystemMetrics:
    """Whole-system aggregation used by the evaluation kit."""

    sync_records: list[SyncRecord] = field(default_factory=list)
    node_metrics: dict[str, NodeMetrics] = field(default_factory=dict)

    def node(self, machine_id: str) -> NodeMetrics:
        if machine_id not in self.node_metrics:
            self.node_metrics[machine_id] = NodeMetrics(machine_id)
        return self.node_metrics[machine_id]

    # -- aggregates -----------------------------------------------------------

    def sync_durations(self) -> list[float]:
        return [record.duration for record in self.sync_records]

    def total_conflicts(self) -> int:
        return sum(m.conflicts for m in self.node_metrics.values())

    def total_issued(self) -> int:
        return sum(m.ops_issued for m in self.node_metrics.values())

    def total_committed(self) -> int:
        return sum(
            m.ops_committed_ok + m.ops_committed_failed
            for m in self.node_metrics.values()
        )

    def execution_histogram(self) -> dict[int, int]:
        """Execution-count histogram across every machine's operations."""
        histogram: dict[int, int] = {}
        for metrics in self.node_metrics.values():
            for count, ops in metrics.execution_histogram().items():
                histogram[count] = histogram.get(count, 0) + ops
        return dict(sorted(histogram.items()))

    def recovered_rounds(self) -> list[SyncRecord]:
        return [record for record in self.sync_records if record.recovered]

    def mean_sync_duration(self) -> float:
        durations = self.sync_durations()
        if not durations:
            return 0.0
        return sum(durations) / len(durations)

    def commit_throughput(self) -> float:
        """Committed operations per virtual second across all recorded
        rounds (first round start to last round finish)."""
        if not self.sync_records:
            return 0.0
        start = min(r.started_at for r in self.sync_records)
        end = max(r.finished_at for r in self.sync_records)
        committed = sum(r.ops_committed for r in self.sync_records)
        if end <= start:
            return 0.0
        return committed / (end - start)

    def total_op_batches(self) -> int:
        return sum(m.op_batches_sent for m in self.node_metrics.values())

    def total_wal_records(self) -> int:
        return sum(m.storage.records_appended for m in self.node_metrics.values())

    def total_wal_bytes(self) -> int:
        return sum(m.storage.bytes_appended for m in self.node_metrics.values())

    def total_fsyncs(self) -> int:
        return sum(m.storage.fsyncs for m in self.node_metrics.values())

    def total_crash_recoveries(self) -> int:
        return sum(m.crash_recoveries for m in self.node_metrics.values())

    def total_refresh_copies(self) -> int:
        """Objects copied committed -> guess across all machines."""
        return sum(m.refresh_objects_copied for m in self.node_metrics.values())

    def total_refresh_live(self) -> int:
        """What the naive full copy would have moved (the denominator
        of the delta-refresh savings ratio)."""
        return sum(m.refresh_objects_live for m in self.node_metrics.values())

    def refresh_copy_ratio(self) -> float:
        """Fraction of live state actually copied per refresh; 1.0 for
        the naive full copy, << 1 under delta refresh on workloads that
        touch few objects per round."""
        live = self.total_refresh_live()
        if live == 0:
            return 0.0
        return self.total_refresh_copies() / live

    def total_decode_cache_hits(self) -> int:
        return sum(m.decode_cache_hits for m in self.node_metrics.values())

    def total_decode_cache_misses(self) -> int:
        return sum(m.decode_cache_misses for m in self.node_metrics.values())

    def total_ops_compacted(self) -> int:
        return sum(m.ops_compacted for m in self.node_metrics.values())
