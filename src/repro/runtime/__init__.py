"""The GUESSTIMATE runtime: synchronizer, membership, fault recovery.

The runtime reproduces section 4 of the paper:

* Synchronization runs in master/slave mode over two broadcast meshes
  (Signals and Operations) in three stages — **AddUpdatesToMesh**
  (serial, turn-based flush of every machine's pending operations),
  **ApplyUpdatesFromMesh** (apply the consolidated list in lexicographic
  (machineID, operation number) order, acknowledge, then refresh the
  guesstimated state and run completion routines), and
  **FlagCompletion**.
* No operations may be issued inside the flush window or the update
  window, which bounds the number of times any operation executes to
  **at most three** (issue, at most one re-execution while converging,
  commit).
* Machines **enter and leave dynamically** (Hello/Welcome snapshot
  transfer), and the master **recovers from stalls** by resending the
  lost signal and, failing that, removing the machine from the current
  synchronization and telling it to restart.
"""

from repro.runtime.config import RuntimeConfig
from repro.runtime.metrics import NodeMetrics, SyncRecord, SystemMetrics
from repro.runtime.node import GuesstimateNode
from repro.runtime.system import DistributedSystem

__all__ = [
    "DistributedSystem",
    "GuesstimateNode",
    "NodeMetrics",
    "RuntimeConfig",
    "SyncRecord",
    "SystemMetrics",
]
