"""Protocol messages exchanged on the Signals and Operations meshes.

All messages are frozen dataclasses of plain values (op payloads are the
encoded wire format from :mod:`repro.core.serialization`), so they are
safe to share across simulated machines and trivially portable to a
real transport.

Signals channel (control plane):

* :class:`StartSync` / :class:`YourTurn` / :class:`FlushDone` — stage 1,
  AddUpdatesToMesh (serial, master-granted turns).
* :class:`BeginApply` / :class:`ApplyAck` / :class:`ResendOpsRequest` —
  stage 2, ApplyUpdatesFromMesh.
* :class:`SyncComplete` — stage 3, FlagCompletion.
* :class:`Hello` / :class:`Welcome` / :class:`WelcomeAck` /
  :class:`Goodbye` — membership.
* :class:`ParticipantRemoved` / :class:`Restart` — fault recovery.

Operations channel (data plane):

* :class:`OpMessage` — one flushed operation, the paper's
  "(machineID, operation number, operation)" triple.
* :class:`OpBatch` — a size-capped frame of flushed operations from
  one machine (the batched wire format of the pipelined synchronizer).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# ---------------------------------------------------------------------------
# Stage 1: AddUpdatesToMesh
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class StartSync:
    """Master → all: a synchronization round begins; ``order`` is the
    turn order (master first).  With ``parallel`` set (the section-9
    extension) every machine flushes immediately instead of waiting for
    its turn.

    ``start_at`` is set on *pre-announced* rounds (the
    ``scheduled_rounds`` optimization): the round does not begin now
    but at that virtual time — every participant arms a flush timer
    for ``start_at`` instead of flushing on receipt, which removes the
    StartSync network hop from the round's critical path."""

    round_id: int
    order: tuple[str, ...]
    parallel: bool = False
    start_at: float | None = None


@dataclass(frozen=True, slots=True)
class YourTurn:
    """Master → one machine: flush your pending operations now.

    Carries the order so a machine that missed StartSync can still
    bootstrap its round state (this *is* the "resent signal" of the
    paper's recovery story).
    """

    round_id: int
    machine_id: str
    order: tuple[str, ...]


@dataclass(frozen=True, slots=True)
class FlushDone:
    """One machine → all: my flush finished; I sent ``count`` operations."""

    round_id: int
    machine_id: str
    count: int


# ---------------------------------------------------------------------------
# Stage 2: ApplyUpdatesFromMesh
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class BeginApply:
    """Master → all: stage 1 done; apply.  ``counts`` maps every
    participating machine to the number of operations it flushed, which
    tells receivers exactly what to wait for."""

    round_id: int
    order: tuple[str, ...]
    counts: tuple[tuple[str, int], ...]  # sorted (machine_id, count) pairs


@dataclass(frozen=True, slots=True)
class ApplyAck:
    """One machine → all (master consumes): I applied every operation.

    ``counts`` is the fingerprint of the per-machine operation counts
    this machine applied.  It is only set on *speculative* acks (the
    ``speculative_apply`` optimization, where a slave assembles counts
    from FlushDones itself instead of waiting for BeginApply); the
    master validates it against the authoritative counts and evicts a
    speculator that applied the wrong round composition."""

    round_id: int
    machine_id: str
    counts: tuple[tuple[str, int], ...] | None = None


@dataclass(frozen=True, slots=True)
class ResendOpsRequest:
    """A machine missing operations asks their origins to resend.

    ``have`` lists the (machine_id, op_number) keys already received so
    each origin can resend exactly the complement of its flush.
    """

    round_id: int
    machine_id: str
    have: tuple[tuple[str, int], ...]


# ---------------------------------------------------------------------------
# Stage 3: FlagCompletion
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SyncComplete:
    """Master → all: the round is over."""

    round_id: int


# ---------------------------------------------------------------------------
# Membership
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Hello:
    """A machine entering the system announces itself.

    ``recovered_count`` is set by a machine that rebuilt committed
    state from its durable log (snapshot + WAL replay): the global |C|
    it already holds.  The master then welcomes it with just the
    committed backlog past that point instead of a full state snapshot.
    ``None`` means no durable state — the ordinary join.

    ``recovered_tail`` is the ``(machine_id, op_number)`` key of the
    last entry in the recovered completed sequence (``None`` when the
    recovery replayed no WAL entries).  A count alone cannot prove the
    recovered history is a prefix of the global order — a machine that
    logged rounds out of order holds the right *number* of entries in
    the wrong positions — so the master cross-checks the tail against
    its own completed sequence before serving a delta backlog, and
    falls back to a full snapshot on mismatch.
    """

    machine_id: str
    recovered_count: int | None = None
    recovered_tail: tuple | None = None


@dataclass(frozen=True, slots=True)
class Welcome:
    """Master → new machine: the snapshot needed to initialize.

    ``snapshot`` maps unique object id → encoded state (type name +
    state dict); ``completed_count`` is |C| at the snapshot point, used
    to align committed-sequence comparisons.

    When the joiner announced durable recovered state (``Hello`` with
    ``recovered_count``) that the master can serve, ``backlog_from`` is
    that count and ``backlog`` carries the committed operations from
    there to ``completed_count`` — each entry a
    ``(machine_id, op_number, encoded op, result, committed_at)``
    tuple — and ``snapshot`` is empty: the joiner replays the delta on
    top of its recovered state instead of discarding it.
    """

    machine_id: str
    master_id: str
    snapshot: dict = field(hash=False)
    completed_count: int = 0
    backlog_from: int | None = None
    backlog: tuple = field(default=(), hash=False)
    #: highest op number the joiner has ever had committed — it must
    #: resume numbering above this or reuse keys (a crash can wipe the
    #: joiner's counter while its last flush commits cluster-side)
    op_floor: int = 0


@dataclass(frozen=True, slots=True)
class WelcomeAck:
    """New machine → master: initialized; include me from the next round."""

    machine_id: str


@dataclass(frozen=True, slots=True)
class Goodbye:
    """A machine leaving the system (graceful)."""

    machine_id: str


# ---------------------------------------------------------------------------
# Fault recovery
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ParticipantRemoved:
    """Master → all: ``machine_id`` is out of round ``round_id``.

    ``drop_ops`` tells receivers to discard any operations already
    received from that machine this round (true only for stage-1
    removals, where the machine never confirmed its flush).
    """

    round_id: int
    machine_id: str
    drop_ops: bool


@dataclass(frozen=True, slots=True)
class Restart:
    """Master → one machine: shut down and re-enter the system."""

    machine_id: str


# ---------------------------------------------------------------------------
# Operations channel
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class OpMessage:
    """One operation in flight: the paper's (machineID, opnumber, op) triple.

    Retained for single-op traffic and protocol fidelity; bulk flushes
    ride in :class:`OpBatch` frames instead.
    """

    round_id: int
    machine_id: str
    op_number: int
    payload: dict = field(hash=False)


@dataclass(frozen=True, slots=True)
class OpBatch:
    """A size-capped frame of flushed operations from one machine.

    ``ops`` is a tuple of ``(op_number, encoded op)`` pairs, all
    originated by ``machine_id`` — semantically equivalent to one
    :class:`OpMessage` per pair, but amortizing per-message overhead
    (the batching lever of the pipelined synchronizer).  ``seq`` /
    ``total`` number the frames of one flush so receivers and the
    deterministic ``(machine_id, seq)`` arrival order are stable; the
    consolidated list is still applied in global
    ``(machineID, opnumber)`` order.
    """

    round_id: int
    machine_id: str
    seq: int
    total: int
    ops: tuple = field(hash=False)  # tuple[(op_number, payload dict), ...]
