"""Structured trace log.

The simulation-relation tests (:mod:`repro.model.simulation_relation`)
need to observe the runtime's atomic steps — issue, commit, guess
refresh — and map them onto the operational-semantics rules R1/R2/R3.
The tracer records exactly those steps plus the protocol milestones,
each as a flat tuple-friendly record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One runtime step: when, where, what."""

    time: float
    machine_id: str
    kind: str
    detail: dict[str, Any] = field(hash=False, default_factory=dict)

    def __str__(self) -> str:
        pairs = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.4f}] {self.machine_id:>6} {self.kind:<14} {pairs}"


class Tracer:
    """Append-only trace with a hard cap (drops oldest beyond it)."""

    #: Event kinds emitted by the runtime; tests match on these.
    ISSUE = "issue"  # rule R2: op executed on sg, queued in P
    ISSUE_REJECTED = "issue_rejected"  # guard failed, op dropped
    COMMIT = "commit"  # rule R3: op applied to sc
    REFRESH = "refresh"  # sg := [P](sc) after a round
    COMPLETION = "completion"  # completion routine ran
    SYNC_START = "sync_start"
    SYNC_DONE = "sync_done"
    FLUSH = "flush"
    RECOVERY = "recovery"
    MEMBERSHIP = "membership"
    STORAGE = "storage"  # WAL snapshots, crash-recovery replays

    def __init__(self, enabled: bool = True, cap: int = 1_000_000):
        self.enabled = enabled
        self.cap = cap
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def emit(self, time: float, machine_id: str, kind: str, **detail: Any) -> None:
        if not self.enabled:
            return
        if len(self.events) >= self.cap:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, machine_id, kind, detail))

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def for_machine(self, machine_id: str) -> list[TraceEvent]:
        return [event for event in self.events if event.machine_id == machine_id]

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0

    def dump(self, limit: int = 200) -> str:  # pragma: no cover - debugging aid
        lines = [str(event) for event in self.events[-limit:]]
        return "\n".join(lines)
