"""Runtime tuning knobs.

Defaults are calibrated so that the simulated system lands in the
paper's measured bands on the default LAN latency profile: an 8-user
synchronization completes "within 0.5 seconds most of the time"
(Figure 5), sync time grows roughly linearly with users at a slope that
keeps 100 users under ~3 seconds (Figure 6), and a full fault recovery
(two stall timeouts) costs more than 12 seconds (Figure 5's outliers).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RuntimeConfig:
    """All timing parameters of the runtime, in seconds."""

    #: Idle gap between the end of one synchronization and the start of
    #: the next (the master "periodically initiating" syncs).
    sync_interval: float = 1.0

    #: How long the master waits for an expected signal (FlushDone or
    #: ApplyAck) before resending it.  Two consecutive timeouts trigger
    #: removal + restart, so a full recovery costs a bit over
    #: ``2 * stall_timeout`` — which must exceed the paper's 12 s
    #: outlier threshold.
    stall_timeout: float = 6.5

    #: How long a machine waits for missing operations after BeginApply
    #: before broadcasting a resend request.
    missing_ops_timeout: float = 1.0

    #: CPU cost model (virtual seconds).  These give the flush/update
    #: windows real width on the event loop so the "no issuing inside a
    #: window" rule is actually exercised.
    flush_cpu_base: float = 0.0005
    flush_cpu_per_op: float = 0.0002
    apply_cpu_base: float = 0.0005
    apply_cpu_per_op: float = 0.0002
    update_cpu_base: float = 0.001
    update_cpu_per_op: float = 0.0002

    #: Upper bound on operations per flush (backpressure guard; the
    #: paper's applications never get near this).
    max_ops_per_flush: int = 10_000

    #: Enable the structured trace log (tests use it; benchmarks turn
    #: it off for speed).
    tracing: bool = False

    # -- future-work extensions (paper section 9) ------------------------

    #: Parallelize AddUpdatesToMesh: all machines flush on StartSync
    #: instead of taking serial turns.  The paper proposes exactly this
    #: to scale past ~1000 users ("parallelize the first stage of the
    #: synchronization protocol so that the time taken depends only on
    #: the number of operations and the network delay but not on the
    #: number of users").  Off by default: the paper kept stage 1
    #: serial "purely for ease of monitoring and debugging".
    parallel_flush: bool = False

    #: Master failover: if no master signal arrives for this long, the
    #: lexicographically-smallest surviving slave promotes itself (the
    #: paper's proposed fix for the single point of failure).  None
    #: disables failover (the paper's actual implementation).
    failover_timeout: float | None = None

    # -- durability (write-ahead log + snapshots + crash recovery) --------

    #: Durability backend: ``off`` (the paper's in-memory implementation,
    #: zero IO), ``memory`` (log + recovery semantics without touching
    #: disk — what simulator crash tests use), or ``disk`` (real WAL and
    #: snapshot files under ``data_dir``).
    durability: str = "off"

    #: Root directory for ``disk`` durability; each machine logs under
    #: ``<data_dir>/<machine_id>/``.
    data_dir: str | None = None

    #: WAL fsync policy: ``always`` (fsync every commit record),
    #: ``interval`` (every ``fsync_interval`` records and on close), or
    #: ``never`` (OS-buffered only; the tail-scan drops whatever a crash
    #: loses).
    fsync_policy: str = "interval"

    #: Records between fsyncs under the ``interval`` policy.
    fsync_interval: int = 8

    #: WAL segment rollover size in bytes.
    wal_segment_bytes: int = 256_000

    #: Committed rounds between snapshots (0 = never snapshot).  Each
    #: snapshot compacts the WAL segments it covers, bounding recovery
    #: replay length.
    snapshot_interval: int = 0

    def flush_cpu(self, n_ops: int) -> float:
        return self.flush_cpu_base + self.flush_cpu_per_op * n_ops

    def apply_cpu(self, n_ops: int) -> float:
        return self.apply_cpu_base + self.apply_cpu_per_op * n_ops

    def update_cpu(self, n_pending: int) -> float:
        return self.update_cpu_base + self.update_cpu_per_op * n_pending

    @property
    def removal_threshold(self) -> float:
        """Time after which a stalled machine gets removed (2 timeouts)."""
        return 2 * self.stall_timeout
