"""Runtime tuning knobs.

Defaults are calibrated so that the simulated system lands in the
paper's measured bands on the default LAN latency profile: an 8-user
synchronization completes "within 0.5 seconds most of the time"
(Figure 5), sync time grows roughly linearly with users at a slope that
keeps 100 users under ~3 seconds (Figure 6), and a full fault recovery
(two stall timeouts) costs more than 12 seconds (Figure 5's outliers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

#: Environment variable consulted for the *default* collection mode.
#: CI runs the whole suite once per mode by exporting it; explicit
#: ``SyncConfig(collection=...)`` always wins over the environment.
COLLECTION_ENV_VAR = "GUESSTIMATE_COLLECTION"

COLLECTION_MODES = ("sequential", "concurrent")


def _default_collection() -> str:
    mode = os.environ.get(COLLECTION_ENV_VAR, "sequential").strip().lower()
    return mode if mode in COLLECTION_MODES else "sequential"


@dataclass(frozen=True)
class SyncConfig:
    """Shape of the synchronization pipeline (stage-1 collection mode,
    operation batching, and round pipelining).

    * ``collection`` — how the master collects pending operations:
      ``"sequential"`` reproduces the paper's token-passing round (the
      master grants ``YourTurn`` to one machine at a time), while
      ``"concurrent"`` broadcasts a single collect signal and every
      participant flushes at once; arrivals are ordered
      deterministically by ``(machine_id, seq)`` so both modes commit
      the identical global sequence.  ``None`` (the default) resolves
      to the ``GUESSTIMATE_COLLECTION`` environment variable, falling
      back to ``"sequential"`` — which is how CI runs the full suite
      across both modes.
    * ``batch_max_ops`` — flushed operations ride in size-capped
      :class:`~repro.runtime.messages.OpBatch` frames instead of one
      message per operation; this caps the entries per frame.
    * ``pipeline_depth`` — maximum synchronization rounds in flight at
      the master: with depth ``d > 1`` the master begins collecting
      round ``k+1`` as soon as round ``k`` enters its apply stage,
      overlapping collection with the previous round's commit+ack
      latency.  Slaves always apply rounds in round-id order, so the
      committed sequence is unaffected.  Depth 1 disables pipelining.
    * ``scheduled_rounds`` — the master pre-announces the next round's
      StartSync (with a ``start_at`` timestamp) during the idle gap, so
      every participant flushes *at* the round boundary instead of one
      network hop after it.  Removes the StartSync hop from the
      critical path.  Concurrent collection only; ignored elsewhere.
    * ``speculative_apply`` — a slave holding a FlushDone from every
      participant self-assembles the authoritative counts and applies
      without waiting for the master's BeginApply, acking with a counts
      fingerprint the master validates (mismatch evicts + restarts the
      speculator).  Removes the BeginApply hop from the critical path.
      Concurrent collection only; ignored elsewhere.
    * ``compact_flush`` — before a flush rides the wire, pending
      operations superseded by a later absorbing operation (see
      :func:`repro.core.shared_object.absorbing`) on the same
      (object, key) from the same issuer are coalesced: only the final
      write is flushed, absorbed completions fire with its commit
      result.
    """

    collection: str | None = None
    batch_max_ops: int = 64
    pipeline_depth: int = 1
    scheduled_rounds: bool = False
    speculative_apply: bool = False
    compact_flush: bool = False

    def __post_init__(self):
        if self.collection is not None and self.collection not in COLLECTION_MODES:
            raise ValueError(
                f"collection must be one of {COLLECTION_MODES}, "
                f"got {self.collection!r}"
            )
        if self.batch_max_ops < 1:
            raise ValueError("batch_max_ops must be >= 1")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")

    @property
    def collection_mode(self) -> str:
        """The effective collection mode (environment-resolved)."""
        if self.collection is not None:
            return self.collection
        return _default_collection()


@dataclass(frozen=True)
class RuntimeConfig:
    """All timing parameters of the runtime, in seconds."""

    #: Idle gap between the end of one synchronization and the start of
    #: the next (the master "periodically initiating" syncs).
    sync_interval: float = 1.0

    #: How long the master waits for an expected signal (FlushDone or
    #: ApplyAck) before resending it.  Two consecutive timeouts trigger
    #: removal + restart, so a full recovery costs a bit over
    #: ``2 * stall_timeout`` — which must exceed the paper's 12 s
    #: outlier threshold.
    stall_timeout: float = 6.5

    #: How long a machine waits for missing operations after BeginApply
    #: before broadcasting a resend request.
    missing_ops_timeout: float = 1.0

    #: CPU cost model (virtual seconds).  These give the flush/update
    #: windows real width on the event loop so the "no issuing inside a
    #: window" rule is actually exercised.
    flush_cpu_base: float = 0.0005
    flush_cpu_per_op: float = 0.0002
    apply_cpu_base: float = 0.0005
    apply_cpu_per_op: float = 0.0002
    update_cpu_base: float = 0.001
    update_cpu_per_op: float = 0.0002

    #: Upper bound on operations per flush (backpressure guard; the
    #: paper's applications never get near this).
    max_ops_per_flush: int = 10_000

    #: Enable the structured trace log (tests use it; benchmarks turn
    #: it off for speed).
    tracing: bool = False

    #: Guess refresh strategy for ApplyUpdatesFromMesh: True (default)
    #: copies only objects whose committed version advanced plus
    #: objects dirtied by pending-op replays — O(touched state) per
    #: round; False reproduces the paper's literal full copy of the
    #: committed store — O(total state).  Semantics are identical (the
    #: simfuzz refresh oracle and Hypothesis properties assert it);
    #: the flag exists for A/B benchmarking and as an escape hatch.
    delta_refresh: bool = True

    #: Cross-check every delta refresh against a full-copy shadow
    #: rebuild ([P](sc) must equal the refreshed sg) and raise on
    #: divergence.  O(total state) per round — for the simulation
    #: fuzzer and tests, not production.
    refresh_oracle: bool = False

    # -- future-work extensions (paper section 9) ------------------------

    #: Parallelize AddUpdatesToMesh: all machines flush on StartSync
    #: instead of taking serial turns.  The paper proposes exactly this
    #: to scale past ~1000 users ("parallelize the first stage of the
    #: synchronization protocol so that the time taken depends only on
    #: the number of operations and the network delay but not on the
    #: number of users").  Off by default: the paper kept stage 1
    #: serial "purely for ease of monitoring and debugging".
    #: Legacy alias: ``parallel_flush=True`` is equivalent to
    #: ``sync=SyncConfig(collection="concurrent")`` and kept for
    #: backward compatibility; prefer ``sync``.
    parallel_flush: bool = False

    #: Synchronization pipeline shape: stage-1 collection mode
    #: (sequential token passing vs concurrent flush), OpBatch size
    #: cap, and master-side round pipelining depth.
    sync: SyncConfig = field(default_factory=SyncConfig)

    #: Master failover: if no master signal arrives for this long, the
    #: lexicographically-smallest surviving slave promotes itself (the
    #: paper's proposed fix for the single point of failure).  None
    #: disables failover (the paper's actual implementation).
    failover_timeout: float | None = None

    # -- durability (write-ahead log + snapshots + crash recovery) --------

    #: Durability backend: ``off`` (the paper's in-memory implementation,
    #: zero IO), ``memory`` (log + recovery semantics without touching
    #: disk — what simulator crash tests use), or ``disk`` (real WAL and
    #: snapshot files under ``data_dir``).
    durability: str = "off"

    #: Root directory for ``disk`` durability; each machine logs under
    #: ``<data_dir>/<machine_id>/``.
    data_dir: str | None = None

    #: WAL fsync policy: ``always`` (fsync every commit record),
    #: ``interval`` (every ``fsync_interval`` records and on close), or
    #: ``never`` (OS-buffered only; the tail-scan drops whatever a crash
    #: loses).
    fsync_policy: str = "interval"

    #: Records between fsyncs under the ``interval`` policy.
    fsync_interval: int = 8

    #: WAL segment rollover size in bytes.
    wal_segment_bytes: int = 256_000

    #: Committed rounds between snapshots (0 = never snapshot).  Each
    #: snapshot compacts the WAL segments it covers, bounding recovery
    #: replay length.
    snapshot_interval: int = 0

    def flush_cpu(self, n_ops: int) -> float:
        return self.flush_cpu_base + self.flush_cpu_per_op * n_ops

    def apply_cpu(self, n_ops: int) -> float:
        return self.apply_cpu_base + self.apply_cpu_per_op * n_ops

    def update_cpu(self, n_pending: int) -> float:
        return self.update_cpu_base + self.update_cpu_per_op * n_pending

    @property
    def removal_threshold(self) -> float:
        """Time after which a stalled machine gets removed (2 timeouts)."""
        return 2 * self.stall_timeout

    @property
    def collection_mode(self) -> str:
        """The effective stage-1 collection mode.

        ``parallel_flush=True`` (the legacy flag) forces
        ``"concurrent"``; otherwise :class:`SyncConfig` decides
        (explicit value, else the ``GUESSTIMATE_COLLECTION``
        environment default).
        """
        if self.parallel_flush:
            return "concurrent"
        return self.sync.collection_mode
