"""Virtual clock for the discrete-event simulator."""

from __future__ import annotations

from repro.errors import ClockMonotonicityError


class VirtualClock:
    """A monotonically advancing simulated clock.

    Time is a float in seconds.  Only the event loop advances the clock;
    everything else reads it through :meth:`now`.
    """

    def __init__(self, start: float = 0.0):
        if start < 0:
            raise ValueError("clock cannot start before t=0")
        self._now = float(start)

    def now(self) -> float:
        """Return the current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ClockMonotonicityError` if ``when`` is in the
        past; advancing to the current instant is a no-op.
        """
        if when < self._now:
            raise ClockMonotonicityError(self._now, when)
        self._now = when

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds."""
        if delta < 0:
            raise ClockMonotonicityError(self._now, self._now + delta)
        self._now += delta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(t={self._now:.6f})"
