"""Abstract scheduler interface plus a wall-clock implementation.

The synchronizer, meshes and workload drivers are written against
:class:`Scheduler` so they can run unmodified on virtual time (the
:class:`~repro.sim.eventloop.EventLoop`) or wall-clock time
(:class:`RealTimeScheduler`).
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod
from typing import Callable


class CancelHandle:
    """Handle returned by :meth:`Scheduler.call_later`; cancellable."""

    __slots__ = ("_cancel", "_cancelled")

    def __init__(self, cancel: Callable[[], None]):
        self._cancel = cancel
        self._cancelled = False

    def cancel(self) -> None:
        """Cancel the scheduled call if it has not fired yet."""
        if not self._cancelled:
            self._cancelled = True
            self._cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class Scheduler(ABC):
    """Minimal scheduling interface used by every time-driven component."""

    @abstractmethod
    def now(self) -> float:
        """Current time in seconds (virtual or wall-clock)."""

    @abstractmethod
    def call_later(self, delay: float, callback: Callable[[], None]) -> CancelHandle:
        """Run ``callback`` after ``delay`` seconds; returns a cancel handle."""

    def call_soon(self, callback: Callable[[], None]) -> CancelHandle:
        """Run ``callback`` as soon as possible (delay 0)."""
        return self.call_later(0.0, callback)


class RealTimeScheduler(Scheduler):
    """Wall-clock scheduler backed by a single timer thread.

    Callbacks run on the timer thread, serialized by an internal lock so
    the callback-driven synchronizer state machines never race.  Used by
    the real-time examples; tests and benchmarks use the deterministic
    :class:`~repro.sim.eventloop.EventLoop` instead.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._timers: set[threading.Timer] = set()
        self._closed = False

    def now(self) -> float:
        return time.monotonic()

    def call_later(self, delay: float, callback: Callable[[], None]) -> CancelHandle:
        if delay < 0:
            raise ValueError("delay must be >= 0")

        timer_box: list[threading.Timer] = []

        def run() -> None:
            with self._lock:
                self._timers.discard(timer_box[0])
                if self._closed:
                    return
                callback()

        timer = threading.Timer(delay, run)
        timer.daemon = True
        timer_box.append(timer)
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is closed")
            self._timers.add(timer)
        timer.start()

        def cancel() -> None:
            timer.cancel()
            with self._lock:
                self._timers.discard(timer)

        return CancelHandle(cancel)

    def run_locked(self, fn: Callable[[], None]) -> None:
        """Run ``fn`` holding the callback lock (for external threads)."""
        with self._lock:
            fn()

    def close(self) -> None:
        """Cancel all outstanding timers and refuse further scheduling."""
        with self._lock:
            self._closed = True
            timers = list(self._timers)
            self._timers.clear()
        for timer in timers:
            timer.cancel()
