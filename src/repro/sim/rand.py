"""Seeded random streams.

Every stochastic component (latency models, fault injectors, workload
generators, puzzle generators) draws from a named sub-stream of a single
root seed, so adding a component never perturbs the random sequence seen
by the others, and every experiment is exactly reproducible from its
seed.
"""

from __future__ import annotations

import hashlib
import random


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for sub-stream ``name``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def seeded_stream(name: str, root_seed: int = 0) -> random.Random:
    """A standalone deterministic stream for component ``name``.

    Components that need a default RNG (rather than one plumbed in from
    an experiment's :class:`SeededSource`) must use this instead of the
    bare :mod:`random` module or an unseeded ``random.Random()`` — the
    simulation fuzzer's bit-identical replay depends on every stream in
    the process being derived from an explicit seed.
    """
    return random.Random(derive_seed(root_seed, name))


class SeededSource:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = int(root_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the (memoized) random stream for component ``name``."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fork(self, name: str) -> "SeededSource":
        """Derive a child source, e.g. one per simulated machine."""
        return SeededSource(derive_seed(self.root_seed, f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeededSource(root_seed={self.root_seed})"
