"""Deterministic discrete-event loop (virtual time).

Events are ordered by (time, sequence-number) so two runs with the same
inputs produce byte-identical traces.  This loop drives every test and
benchmark in the repository; the real-time examples use
:class:`~repro.sim.scheduler.RealTimeScheduler` instead.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import ClockMonotonicityError, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.scheduler import CancelHandle, Scheduler


class ScheduledEvent:
    """A pending callback inside the :class:`EventLoop` heap."""

    __slots__ = ("when", "seq", "callback", "cancelled")

    def __init__(self, when: float, seq: int, callback: Callable[[], None]):
        self.when = when
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"<ScheduledEvent t={self.when:.6f} seq={self.seq}{flag}>"


class EventLoop(Scheduler):
    """A deterministic discrete-event scheduler over a virtual clock.

    Usage::

        loop = EventLoop()
        loop.call_later(1.5, lambda: print("fired at", loop.now()))
        loop.run_until(10.0)
    """

    def __init__(self, clock: VirtualClock | None = None):
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: list[ScheduledEvent] = []
        self._seq = itertools.count()
        self._running = False
        self._executed = 0
        #: Optional hook called with each event as it is popped (before
        #: its callback runs).  The simulation fuzzer records the
        #: (time, sequence) of every scheduler decision through this so
        #: a replayed seed can be compared step by step.
        self.observer: Callable[[ScheduledEvent], None] | None = None

    # -- Scheduler interface -------------------------------------------------

    def now(self) -> float:
        return self.clock.now()

    def call_later(self, delay: float, callback: Callable[[], None]) -> CancelHandle:
        event = self.schedule(delay, callback)
        return CancelHandle(event.cancel)

    # -- scheduling ----------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ClockMonotonicityError(self.now(), self.now() + delay)
        return self.schedule_at(self.now() + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``when``."""
        if when < self.now():
            raise ClockMonotonicityError(self.now(), when)
        event = ScheduledEvent(when, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    # -- execution -----------------------------------------------------------

    @property
    def pending_count(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def executed_count(self) -> int:
        """Total number of callbacks executed so far."""
        return self._executed

    def peek_time(self) -> float | None:
        """Virtual time of the next live event, or None if idle."""
        self._drop_cancelled_head()
        if not self._heap:
            return None
        return self._heap[0].when

    def step(self) -> bool:
        """Execute the single next event.  Returns False if none remain."""
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self.clock.advance_to(event.when)
        self._executed += 1
        if self.observer is not None:
            self.observer(event)
        event.callback()
        return True

    def run(self, max_events: int = 10_000_000) -> int:
        """Run until no events remain.  Returns number executed.

        ``max_events`` guards against runaway self-rescheduling loops
        (periodic synchronization reschedules itself forever, so
        benchmark drivers should prefer :meth:`run_until`).
        """
        if self._running:
            raise SimulationError("event loop is not re-entrant")
        self._running = True
        executed = 0
        try:
            while executed < max_events and self.step():
                executed += 1
        finally:
            self._running = False
        if executed >= max_events:
            raise SimulationError(f"exceeded max_events={max_events}; likely a livelock")
        return executed

    def run_until(self, deadline: float) -> int:
        """Run events with time <= deadline; clock ends exactly at deadline."""
        if deadline < self.now():
            raise ClockMonotonicityError(self.now(), deadline)
        if self._running:
            raise SimulationError("event loop is not re-entrant")
        self._running = True
        executed = 0
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or next_time > deadline:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        self.clock.advance_to(deadline)
        return executed

    def run_while(self, predicate: Callable[[], bool], deadline: float) -> int:
        """Run events while ``predicate()`` holds, up to ``deadline``."""
        executed = 0
        while predicate():
            next_time = self.peek_time()
            if next_time is None or next_time > deadline:
                break
            self.step()
            executed += 1
        return executed

    # -- internal ------------------------------------------------------------

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
