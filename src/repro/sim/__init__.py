"""Discrete-event simulation kernel.

The GUESSTIMATE runtime is written against the small scheduler interface
defined here, so the same synchronizer code runs on the deterministic
virtual-time loop used by tests and benchmarks and on the real-time
threaded scheduler used by the live examples.

Public classes:

* :class:`~repro.sim.clock.VirtualClock` — monotonically advancing
  simulated time.
* :class:`~repro.sim.eventloop.EventLoop` — deterministic discrete-event
  scheduler (the heart of every benchmark).
* :class:`~repro.sim.eventloop.ScheduledEvent` — cancellable handle.
* :class:`~repro.sim.scheduler.Scheduler` — the abstract interface.
* :class:`~repro.sim.scheduler.RealTimeScheduler` — wall-clock
  implementation backed by a timer thread.
* :class:`~repro.sim.rand.SeededSource` — seeded random streams, one
  sub-stream per named component.
"""

from repro.sim.clock import VirtualClock
from repro.sim.eventloop import EventLoop, ScheduledEvent
from repro.sim.rand import SeededSource
from repro.sim.scheduler import RealTimeScheduler, Scheduler

__all__ = [
    "EventLoop",
    "RealTimeScheduler",
    "ScheduledEvent",
    "Scheduler",
    "SeededSource",
    "VirtualClock",
]
