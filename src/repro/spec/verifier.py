"""Boogie-lite: bounded-exhaustive verification of contract assertions.

For every assertion declared on a shared class the verifier quantifies
over a *state domain* (freshly-built candidate objects) and per-method
*argument domains*, and checks the assertion's proof obligation:

* ``requires`` — defensiveness: on inputs where the precondition
  fails, the method must return False and leave the state unchanged
  (GUESSTIMATE operations reject, they do not crash or corrupt).
* ``ensures`` — on inputs satisfying every precondition, a successful
  call's (old, new, result, args) must satisfy the predicate.
* conformance (implicit, every contracted method) — a False return
  leaves the shared state unchanged.
* ``modifies`` — fields outside the frame never change.
* ``invariant`` — holds on every domain state, and is preserved by
  every contracted method.

Classification follows Boogie's taxonomy: if the whole domain was
enumerated and no case failed, the assertion is **VERIFIED**; a failing
case makes it **REFUTED** (with the counterexample); a domain too large
to exhaust within the budget leaves it a **RUNTIME_CHECK**.
"""

from __future__ import annotations

import copy
import itertools
import random
from typing import Any, Callable

from repro.errors import SpecError
from repro.spec.contracts import set_checking
from repro.spec.domains import Domain, product
from repro.spec.report import AssertionOutcome, AssertionResult, VerificationReport


class Verifier:
    """Quantifies contract assertions over finite domains."""

    def __init__(self, budget: int = 2000, seed: int = 0):
        if budget < 1:
            raise SpecError("budget must be positive")
        self.budget = budget
        self.seed = seed

    # -- public API -------------------------------------------------------------

    def verify_class(
        self,
        cls: type,
        states: Domain,
        args: dict[str, Domain] | None = None,
    ) -> VerificationReport:
        """Verify every assertion on ``cls``.

        ``states`` must yield freshly-constructed instances of ``cls``
        (they are mutated during checking).  ``args`` maps method name
        to a domain of argument tuples; contracted methods without an
        entry cannot be quantified and their assertions become runtime
        checks.
        """
        args = args or {}
        report = VerificationReport(cls.__name__)
        previous = set_checking(False)
        try:
            self._verify_invariant_validity(cls, states, report)
            for name in _contracted_members(cls):
                member = getattr(cls, name)
                spec = getattr(member, "__gspec__", None)
                if spec is None:  # pragma: no cover - filtered already
                    continue
                raw = getattr(member, "__gspec_raw__", member)
                if name in args:
                    domain = product(states, args[name], name=f"{name}-cases")
                    self._verify_method(cls, name, raw, spec, domain, report)
                else:
                    self._defer_method(cls, name, spec, report)
        finally:
            set_checking(previous)
        return report

    # -- invariant validity + preservation ------------------------------------------

    def _verify_invariant_validity(
        self, cls: type, states: Domain, report: VerificationReport
    ) -> None:
        for clause in getattr(cls, "__ginvariants__", ()):
            outcome, cases, counterexample = self._quantify(
                states,
                lambda obj, c=clause: bool(c.predicate(obj)),
            )
            report.results.append(
                AssertionResult(
                    kind="invariant",
                    subject=cls.__name__,
                    description=f"{clause.description} (domain validity)",
                    outcome=outcome,
                    cases_checked=cases,
                    counterexample=counterexample,
                )
            )

    # -- per-method obligations ----------------------------------------------------

    def _verify_method(
        self,
        cls: type,
        name: str,
        raw: Callable,
        spec: Any,
        cases: Domain,
        report: VerificationReport,
    ) -> None:
        subject = f"{cls.__name__}.{name}"
        requires = list(spec.requires)

        def preconditions_hold(obj: Any, call_args: tuple) -> bool:
            return all(
                self._safe_pred(clause.predicate, obj, *call_args)
                for clause in requires
            )

        # requires: defensive rejection of bad inputs.
        for clause in requires:
            def defensive(case: tuple, clause=clause) -> bool:
                obj, call_args = case
                obj = copy.deepcopy(obj)  # product() reuses state objects
                if self._safe_pred(clause.predicate, obj, *call_args):
                    return True  # precondition holds; nothing to refute here
                before = _state_of(obj)
                try:
                    result = raw(obj, *call_args)
                except Exception:
                    return False  # crashed on bad input
                return result is False and _state_of(obj) == before

            outcome, count, cex = self._quantify(cases, defensive)
            report.results.append(
                AssertionResult(
                    "requires", subject, clause.description, outcome, count, cex
                )
            )

        # ensures: success implies the postcondition relation.
        for clause in spec.ensures:
            def established(case: tuple, clause=clause) -> bool:
                obj, call_args = case
                obj = copy.deepcopy(obj)
                if not preconditions_hold(obj, call_args):
                    return True
                before = _state_of(obj)
                result = raw(obj, *call_args)
                return bool(clause.predicate(before, obj, result, *call_args))

            outcome, count, cex = self._quantify(cases, established)
            report.results.append(
                AssertionResult(
                    "ensures", subject, clause.description, outcome, count, cex
                )
            )

        # conformance: False implies unchanged (every contracted method).
        def conformant(case: tuple) -> bool:
            obj, call_args = case
            obj = copy.deepcopy(obj)
            if not preconditions_hold(obj, call_args):
                return True
            before = _state_of(obj)
            result = raw(obj, *call_args)
            return result is not False or _state_of(obj) == before

        outcome, count, cex = self._quantify(cases, conformant)
        report.results.append(
            AssertionResult(
                "conformance",
                subject,
                "returns False implies shared state unchanged",
                outcome,
                count,
                cex,
            )
        )

        # modifies: the frame, one assertion per protected field.
        if spec.modifies is not None:
            probe = cls()
            frame_fields = [
                field_name
                for field_name in vars(probe)
                if not field_name.startswith("_g_")
                and field_name not in spec.modifies
            ]
            for field_name in frame_fields:
                def framed(case: tuple, field_name=field_name) -> bool:
                    obj, call_args = case
                    obj = copy.deepcopy(obj)
                    if not preconditions_hold(obj, call_args):
                        return True
                    before = copy.deepcopy(getattr(obj, field_name, None))
                    raw(obj, *call_args)
                    return getattr(obj, field_name, None) == before

                outcome, count, cex = self._quantify(cases, framed)
                report.results.append(
                    AssertionResult(
                        "modifies",
                        subject,
                        f"field {field_name!r} is never written",
                        outcome,
                        count,
                        cex,
                    )
                )

        # invariant preservation, one assertion per (invariant, method).
        for clause in getattr(cls, "__ginvariants__", ()):
            def preserved(case: tuple, clause=clause) -> bool:
                obj, call_args = case
                obj = copy.deepcopy(obj)
                if not self._safe_pred(clause.predicate, obj):
                    return True  # entry state outside the invariant
                if not preconditions_hold(obj, call_args):
                    return True
                raw(obj, *call_args)
                return bool(clause.predicate(obj))

            outcome, count, cex = self._quantify(cases, preserved)
            report.results.append(
                AssertionResult(
                    "invariant",
                    subject,
                    f"{clause.description} (preserved)",
                    outcome,
                    count,
                    cex,
                )
            )

    def _defer_method(
        self, cls: type, name: str, spec: Any, report: VerificationReport
    ) -> None:
        """No argument domain: every obligation stays a runtime check."""
        subject = f"{cls.__name__}.{name}"
        clauses: list[tuple[str, str]] = []
        clauses += [("requires", c.description) for c in spec.requires]
        clauses += [("ensures", c.description) for c in spec.ensures]
        clauses.append(
            ("conformance", "returns False implies shared state unchanged")
        )
        if spec.modifies is not None:
            probe = cls()
            for field_name in vars(probe):
                if not field_name.startswith("_g_") and field_name not in spec.modifies:
                    clauses.append(
                        ("modifies", f"field {field_name!r} is never written")
                    )
        for clause in getattr(cls, "__ginvariants__", ()):
            clauses.append(("invariant", f"{clause.description} (preserved)"))
        for kind, description in clauses:
            report.results.append(
                AssertionResult(
                    kind, subject, description, AssertionOutcome.RUNTIME_CHECK, 0
                )
            )

    # -- quantification core ------------------------------------------------------------

    def _quantify(
        self, domain: Domain, obligation: Callable[[Any], bool]
    ) -> tuple[AssertionOutcome, int, Any]:
        """Check ``obligation`` over the domain within the budget."""
        rng = random.Random(self.seed)
        checked = 0
        exhausted = True
        iterator = domain.iterate(rng, self.budget + 1)
        for case in itertools.islice(iterator, self.budget + 1):
            if checked == self.budget:
                exhausted = False  # more cases exist beyond the budget
                break
            checked += 1
            if not obligation(case):
                return AssertionOutcome.REFUTED, checked, _describe_case(case)
        if exhausted and domain.exhaustive:
            return AssertionOutcome.VERIFIED, checked, None
        return AssertionOutcome.RUNTIME_CHECK, checked, None

    @staticmethod
    def _safe_pred(predicate: Callable, *args: Any) -> bool:
        try:
            return bool(predicate(*args))
        except Exception:
            return False


def _contracted_members(cls: type) -> list[str]:
    """Names of contracted methods anywhere in the MRO (most-derived wins)."""
    names: set[str] = set()
    for klass in cls.__mro__:
        for name, member in vars(klass).items():
            if getattr(member, "__gspec__", None) is not None:
                names.add(name)
    return sorted(names)


def _state_of(obj: Any) -> dict[str, Any]:
    get_state = getattr(obj, "get_state", None)
    if callable(get_state):
        return get_state()
    return {
        key: copy.deepcopy(value)
        for key, value in vars(obj).items()
        if not key.startswith("_g_")
    }


def _describe_case(case: Any) -> Any:
    if isinstance(case, tuple) and len(case) == 2:
        obj, call_args = case
        get_state = getattr(obj, "get_state", None)
        state = get_state() if callable(get_state) else repr(obj)
        return {"state": state, "args": call_args}
    return repr(case)
