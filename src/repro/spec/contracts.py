"""Contract decorators: requires / ensures / modifies / invariant.

Usage on a shared class::

    @invariant(lambda self: all(0 <= v <= 9 for row in self.grid for v in row),
               "cells hold 0..9")
    class SudokuBoard(GSharedObject):

        @requires(lambda self, r, c, v: 1 <= v <= 9, "value in range")
        @ensures(lambda old, self, result, r, c, v:
                 (not result) or self.grid[r - 1][c - 1] == v,
                 "on success the cell holds v")
        @modifies("grid")
        def update(self, r, c, v) -> bool:
            ...

Checking is global and switchable: ``set_checking(True)`` (default)
wraps every contracted call with precondition, postcondition,
frame (modifies) and invariant checks, raising
:class:`~repro.errors.ContractViolation` on failure — this is Spec#'s
"translated into runtime checks" mode.  Benchmarks call
``set_checking(False)`` and pay nothing but one flag test per call.

Every declared clause is also recorded as an :class:`Assertion` so the
verifier can attempt a static (bounded-exhaustive) proof of it.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ContractViolation

_CHECKING = True


def set_checking(enabled: bool) -> bool:
    """Globally enable/disable runtime contract checks; returns previous."""
    global _CHECKING
    previous = _CHECKING
    _CHECKING = bool(enabled)
    return previous


def checking_enabled() -> bool:
    return _CHECKING


@dataclass(frozen=True)
class Assertion:
    """One declared contract clause, as seen by the verifier."""

    kind: str  # "requires" | "ensures" | "modifies" | "invariant"
    subject: str  # "Class.method" or "Class"
    description: str
    predicate: Callable = None  # type: ignore[assignment]
    fields: tuple[str, ...] = ()


class _SpecInfo:
    """Accumulated contract clauses for one method."""

    def __init__(self):
        self.requires: list[Assertion] = []
        self.ensures: list[Assertion] = []
        self.modifies: tuple[str, ...] | None = None


def _spec_of(fn: Callable) -> _SpecInfo:
    if not hasattr(fn, "__gspec__"):
        fn.__gspec__ = _SpecInfo()  # type: ignore[attr-defined]
    return fn.__gspec__  # type: ignore[attr-defined]


def _wrap(fn: Callable) -> Callable:
    """Wrap ``fn`` with contract checking (idempotent)."""
    if getattr(fn, "__gspec_wrapped__", False):
        return fn
    spec = _spec_of(fn)

    @functools.wraps(fn)
    def checked(self, *args: Any, **kwargs: Any):
        if not _CHECKING:
            return fn(self, *args, **kwargs)
        subject = f"{type(self).__name__}.{fn.__name__}"
        for clause in spec.requires:
            if not clause.predicate(self, *args, **kwargs):
                raise ContractViolation("requires", clause.description, subject)
        _check_invariants(self, subject, "entry")
        old = _snapshot(self)
        result = fn(self, *args, **kwargs)
        if result is False and _snapshot(self) != old:
            raise ContractViolation(
                "conformance",
                "operation returned False but modified shared state",
                subject,
            )
        if spec.modifies is not None:
            new = _snapshot(self)
            for field_name, old_value in old.items():
                if field_name not in spec.modifies and new.get(field_name) != old_value:
                    raise ContractViolation(
                        "modifies",
                        f"field {field_name!r} changed but is not in the frame",
                        subject,
                    )
        for clause in spec.ensures:
            if not clause.predicate(old, self, result, *args, **kwargs):
                raise ContractViolation("ensures", clause.description, subject)
        _check_invariants(self, subject, "exit")
        return result

    checked.__gspec__ = spec  # type: ignore[attr-defined]
    checked.__gspec_wrapped__ = True  # type: ignore[attr-defined]
    checked.__gspec_raw__ = fn  # type: ignore[attr-defined]
    return checked


def requires(predicate: Callable, description: str = "precondition"):
    """Declare a precondition ``predicate(self, *args) -> bool``."""

    def decorate(fn: Callable) -> Callable:
        raw = getattr(fn, "__gspec_raw__", fn)
        wrapped = _wrap(raw)
        clause = Assertion("requires", raw.__qualname__, description, predicate)
        wrapped.__gspec__.requires.insert(0, clause)  # type: ignore[attr-defined]
        return wrapped

    return decorate


def ensures(predicate: Callable, description: str = "postcondition"):
    """Declare a postcondition ``predicate(old, self, result, *args)``.

    ``old`` is a dict snapshot of the instance fields before the call
    (compare e.g. ``old["grid"]`` with ``self.grid``).
    """

    def decorate(fn: Callable) -> Callable:
        raw = getattr(fn, "__gspec_raw__", fn)
        wrapped = _wrap(raw)
        clause = Assertion("ensures", raw.__qualname__, description, predicate)
        wrapped.__gspec__.ensures.insert(0, clause)  # type: ignore[attr-defined]
        return wrapped

    return decorate


def modifies(*fields: str):
    """Declare the write frame: only the named fields may change."""

    def decorate(fn: Callable) -> Callable:
        raw = getattr(fn, "__gspec_raw__", fn)
        wrapped = _wrap(raw)
        wrapped.__gspec__.modifies = tuple(fields)  # type: ignore[attr-defined]
        return wrapped

    return decorate


#: attribute carrying the @commutative marker on a (wrapped) method
COMMUTATIVE_ATTR = "__g_commutative__"


def commutative(fn: Callable) -> Callable:
    """Mark an operation as commuting with every op of its class.

    A bare marker, no runtime semantics of its own: glint's GL007
    certifies it against the inferred interference matrix, the effects
    manifest publishes it, and the simfuzz commute probe re-executes
    adjacent committed pairs of marked ops in both orders.  Apply it
    *outermost* (above ``@requires``/``@ensures``/``@modifies``) so the
    marker lands on the wrapped function the class actually holds.
    """
    setattr(fn, COMMUTATIVE_ATTR, True)
    return fn


def is_commutative(cls: type, method_name: str) -> bool:
    """Does ``cls.method_name`` carry the @commutative marker?"""
    return bool(getattr(getattr(cls, method_name, None), COMMUTATIVE_ATTR, False))


def invariant(predicate: Callable, description: str = "object invariant"):
    """Class decorator declaring an object invariant ``predicate(self)``.

    Checked on entry and exit of every contracted method.  Stack as
    many as needed; they accumulate.
    """

    def decorate(cls: type) -> type:
        existing = list(getattr(cls, "__ginvariants__", ()))
        existing.append(Assertion("invariant", cls.__name__, description, predicate))
        cls.__ginvariants__ = tuple(existing)  # type: ignore[attr-defined]
        return cls

    return decorate


def _check_invariants(obj: Any, subject: str, where: str) -> None:
    for clause in getattr(type(obj), "__ginvariants__", ()):
        if not clause.predicate(obj):
            raise ContractViolation(
                "invariant", f"{clause.description} (at {where})", subject
            )


def _snapshot(obj: Any) -> dict[str, Any]:
    """Deep-ish snapshot of instance fields for frame/conformance checks."""
    import copy

    return {
        key: copy.deepcopy(value)
        for key, value in obj.__dict__.items()
        if not key.startswith("_g_")
    }


def contract_assertions(cls: type) -> list[Assertion]:
    """Every assertion declared on ``cls``: invariants + per-method clauses.

    ``modifies`` frames contribute one assertion per protected field
    per method (each is an independently checkable claim), mirroring
    how verifiers explode frame conditions into per-location checks.
    """
    assertions: list[Assertion] = list(getattr(cls, "__ginvariants__", ()))
    contracted: set[str] = set()
    for klass in cls.__mro__:
        for name, member in vars(klass).items():
            if getattr(member, "__gspec__", None) is not None:
                contracted.add(name)
    for name in sorted(contracted):
        member = getattr(cls, name)
        spec = getattr(member, "__gspec__", None)
        if spec is None:  # pragma: no cover - filtered already
            continue
        assertions.extend(spec.requires)
        assertions.extend(spec.ensures)
        # Built-in conformance obligation for every contracted method.
        assertions.append(
            Assertion(
                "conformance",
                f"{cls.__name__}.{name}",
                "returns False implies shared state unchanged",
            )
        )
        if spec.modifies is not None:
            probe = cls()
            frame_fields = [
                field_name
                for field_name in vars(probe)
                if not field_name.startswith("_g_")
                and field_name not in spec.modifies
            ]
            for field_name in frame_fields:
                assertions.append(
                    Assertion(
                        "modifies",
                        f"{cls.__name__}.{name}",
                        f"field {field_name!r} is never written",
                        fields=(field_name,),
                    )
                )
    return assertions
