"""State/argument domains the verifier quantifies over.

A :class:`Domain` yields candidate values.  Exhaustive domains
(``integers``, ``choices``, small ``product``\\ s) let the verifier
*prove* an assertion over the whole space; sampled domains only let it
search for counterexamples, so assertions that survive sampling are
classified as runtime checks — the same conservative fallback Spec#
makes for assertions Boogie cannot discharge.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator


@dataclass(frozen=True)
class Domain:
    """A stream of candidate values, exhaustive or sampled."""

    name: str
    exhaustive: bool
    _generate: Callable[[random.Random], Iterator[Any]]

    def iterate(self, rng: random.Random, budget: int) -> Iterator[Any]:
        """Yield up to ``budget`` candidates (all of them if fewer)."""
        return itertools.islice(self._generate(rng), budget)

    def size_within(self, budget: int) -> int:
        """Number of candidates produced given ``budget``."""
        return sum(1 for _ in self.iterate(random.Random(0), budget))

    def map(self, fn: Callable[[Any], Any], name: str | None = None) -> "Domain":
        """Apply ``fn`` to every candidate (e.g. build objects)."""

        def generate(rng: random.Random) -> Iterator[Any]:
            return (fn(value) for value in self._generate(rng))

        return Domain(name or f"map({self.name})", self.exhaustive, generate)


def integers(low: int, high: int) -> Domain:
    """All integers in [low, high] — exhaustive."""
    if low > high:
        raise ValueError("need low <= high")

    def generate(rng: random.Random) -> Iterator[int]:
        return iter(range(low, high + 1))

    return Domain(f"int[{low},{high}]", True, generate)


def booleans() -> Domain:
    """The two booleans — exhaustive."""

    def generate(rng: random.Random) -> Iterator[bool]:
        return iter((False, True))

    return Domain("bool", True, generate)


def choices(values: Iterable[Any], name: str = "choices") -> Domain:
    """An explicit finite set of values — exhaustive."""
    frozen = tuple(values)

    def generate(rng: random.Random) -> Iterator[Any]:
        return iter(frozen)

    return Domain(name, True, generate)


def product(*domains: Domain, name: str = "product") -> Domain:
    """Cartesian product; exhaustive iff every factor is.

    When every factor is exhaustive this is the plain Cartesian
    product.  When any factor is sampled (infinite), full
    materialization is impossible, so the product switches to sampling
    mode: each yielded tuple draws a fresh candidate from every sampled
    factor and a uniformly random one from each finite factor.  The
    resulting domain is non-exhaustive, so the verifier can refute but
    not prove over it — the conservative outcome the classification
    relies on.
    """
    all_exhaustive = all(domain.exhaustive for domain in domains)

    def generate(rng: random.Random) -> Iterator[tuple]:
        if all_exhaustive:
            return itertools.product(*(d._generate(rng) for d in domains))
        return _sampled_product(domains, rng)

    return Domain(name, all_exhaustive, generate)


def _sampled_product(domains: tuple[Domain, ...], rng: random.Random) -> Iterator[tuple]:
    finite_pools = {
        index: list(domain._generate(rng))
        for index, domain in enumerate(domains)
        if domain.exhaustive
    }
    streams = {
        index: domain._generate(rng)
        for index, domain in enumerate(domains)
        if not domain.exhaustive
    }
    while True:
        item = []
        for index, domain in enumerate(domains):
            if domain.exhaustive:
                pool = finite_pools[index]
                if not pool:
                    return
                item.append(rng.choice(pool))
            else:
                item.append(next(streams[index]))
        yield tuple(item)


def sampled(
    sampler: Callable[[random.Random], Any], name: str = "sampled"
) -> Domain:
    """An unbounded sampled domain — never exhaustive.

    ``sampler`` draws one candidate per call; the verifier draws as
    many as its budget allows and can only refute, never prove.
    """

    def generate(rng: random.Random) -> Iterator[Any]:
        while True:
            yield sampler(rng)

    return Domain(name, False, generate)
