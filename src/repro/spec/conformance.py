"""Operation conformance checking (paper section 3).

A shared operation ``s`` *conforms* to its specification φs ⊆ S×S when
for any shared states s1, s2:

1. if ``s(s1) = (s2, True)`` then ``(s1, s2) ∈ φs``;
2. if ``s(s1) = (s2, False)`` then ``s1 = s2``.

:func:`check_conformance` tests both clauses for a concrete operation
over a domain of states.  It is the dynamic-analysis sibling of the
:class:`~repro.spec.verifier.Verifier` (which works from declared
contract clauses); use it when the specification is easier to state as
a single relation — e.g. the car-pool paper example
``φ_GetRide = "the user ends up with a ride on some vehicle"``.
"""

from __future__ import annotations

import copy
import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.spec.contracts import set_checking
from repro.spec.domains import Domain

#: A specification φs ⊆ S×S, given old and new state dicts plus args.
SpecRelation = Callable[[dict, dict, tuple], bool]


@dataclass
class ConformanceReport:
    """Outcome of a conformance check."""

    operation: str
    cases: int = 0
    successes: int = 0
    failures: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def conforms(self) -> bool:
        return not self.violations

    def summary_line(self) -> str:
        verdict = "conforms" if self.conforms else "VIOLATES"
        return (
            f"{self.operation}: {verdict} over {self.cases} cases "
            f"({self.successes} succeeded, {self.failures} failed)"
        )


def check_conformance(
    method_name: str,
    states: Domain,
    args: Domain,
    spec: SpecRelation,
    budget: int = 1000,
    seed: int = 0,
) -> ConformanceReport:
    """Check clauses (1) and (2) for ``method_name`` over the domains.

    ``states`` yields fresh shared objects; ``args`` yields argument
    tuples.  The method is looked up on each state object, so the same
    check works for any shared class.
    """
    rng = random.Random(seed)
    report = ConformanceReport(method_name)
    arg_pool = list(args.iterate(rng, max(1, budget // 10)))
    if not arg_pool:
        return report
    previous = set_checking(False)  # judge raw semantics, not the checks
    try:
        _run_conformance_cases(method_name, states, rng, budget, arg_pool, spec, report)
    finally:
        set_checking(previous)
    return report


def _run_conformance_cases(method_name, states, rng, budget, arg_pool, spec, report):
    for obj in states.iterate(rng, budget):
        call_args = tuple(arg_pool[report.cases % len(arg_pool)])
        report.cases += 1
        before = _state_of(obj)
        method = getattr(obj, method_name)
        try:
            result = method(*call_args)
        except Exception as exc:
            report.violations.append(
                f"case {report.cases}: raised {type(exc).__name__}: {exc} "
                f"(state={before}, args={call_args})"
            )
            continue
        after = _state_of(obj)
        if result:
            report.successes += 1
            if not spec(before, after, call_args):
                report.violations.append(
                    f"case {report.cases}: returned True but (s1, s2) not in "
                    f"the specification (state={before}, args={call_args})"
                )
        else:
            report.failures += 1
            if after != before:
                report.violations.append(
                    f"case {report.cases}: returned False but changed state "
                    f"(state={before}, args={call_args})"
                )
    return report


def or_else_preserves_spec(
    first_name: str,
    second_name: str,
    states: Domain,
    args: Domain,
    spec: SpecRelation,
    budget: int = 1000,
    seed: int = 0,
) -> ConformanceReport:
    """Check the paper's OrElse design-pattern lemma.

    "If operations s and t both conform to a specification φ, the
    operation s OrElse t also conforms to φ."  This checks the combined
    behaviour directly: try ``first``; on failure roll back (the copy
    here stands in for copy-on-write) and try ``second``.
    """
    rng = random.Random(seed)
    report = ConformanceReport(f"{first_name} OrElse {second_name}")
    arg_pool = list(args.iterate(rng, max(1, budget // 10)))
    if not arg_pool:
        return report
    previous = set_checking(False)
    try:
        _run_or_else_cases(
            first_name, second_name, states, rng, budget, arg_pool, spec, report
        )
    finally:
        set_checking(previous)
    return report


def _run_or_else_cases(
    first_name, second_name, states, rng, budget, arg_pool, spec, report
):
    for obj in states.iterate(rng, budget):
        call_args = tuple(arg_pool[report.cases % len(arg_pool)])
        report.cases += 1
        before = _state_of(obj)
        attempt = copy.deepcopy(obj)
        result = getattr(attempt, first_name)(*call_args)
        if not result:
            attempt = copy.deepcopy(obj)
            result = getattr(attempt, second_name)(*call_args)
        after = _state_of(attempt)
        if result:
            report.successes += 1
            if not spec(before, after, call_args):
                report.violations.append(
                    f"case {report.cases}: OrElse returned True outside the "
                    f"specification (state={before}, args={call_args})"
                )
        else:
            report.failures += 1
            if after != before:
                report.violations.append(
                    f"case {report.cases}: OrElse returned False but changed "
                    f"state (state={before}, args={call_args})"
                )
    return report


def _state_of(obj: Any) -> dict[str, Any]:
    get_state = getattr(obj, "get_state", None)
    if callable(get_state):
        return get_state()
    return {
        key: copy.deepcopy(value)
        for key, value in vars(obj).items()
        if not key.startswith("_g_")
    }
