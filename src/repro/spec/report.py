"""Verification report types and formatting.

Mirrors the paper's Boogie output taxonomy (section 6): "Boogie
classifies assertions into provably correct assertions, provably
failing assertions (flagged as warnings at compile time) and other
assertions which cannot be proven statically [which] Spec# translates
into checks".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any


class AssertionOutcome(Enum):
    """What the verifier concluded about one assertion."""

    VERIFIED = "verified"  # holds on the entire declared domain
    REFUTED = "refuted"  # counterexample found
    RUNTIME_CHECK = "runtime-check"  # domain not exhaustible; stays checked


@dataclass
class AssertionResult:
    """One assertion's verdict, with the evidence."""

    kind: str
    subject: str
    description: str
    outcome: AssertionOutcome
    cases_checked: int = 0
    counterexample: Any = None


@dataclass
class VerificationReport:
    """All assertion verdicts for one shared class."""

    class_name: str
    results: list[AssertionResult] = field(default_factory=list)

    # -- tallies ---------------------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.results)

    def count(self, outcome: AssertionOutcome) -> int:
        return sum(1 for result in self.results if result.outcome is outcome)

    @property
    def verified(self) -> int:
        return self.count(AssertionOutcome.VERIFIED)

    @property
    def refuted(self) -> int:
        return self.count(AssertionOutcome.REFUTED)

    @property
    def runtime_checks(self) -> int:
        return self.count(AssertionOutcome.RUNTIME_CHECK)

    @property
    def clean(self) -> bool:
        """True when nothing was refuted."""
        return self.refuted == 0

    def refutations(self) -> list[AssertionResult]:
        return [
            result
            for result in self.results
            if result.outcome is AssertionOutcome.REFUTED
        ]

    # -- formatting ------------------------------------------------------------

    def summary_line(self) -> str:
        return (
            f"{self.class_name}: {self.total} assertions — "
            f"{self.verified} verified, {self.refuted} refuted, "
            f"{self.runtime_checks} runtime checks"
        )

    def format_table(self) -> str:
        lines = [self.summary_line(), "-" * 72]
        for result in self.results:
            marker = {
                AssertionOutcome.VERIFIED: "ok ",
                AssertionOutcome.REFUTED: "FAIL",
                AssertionOutcome.RUNTIME_CHECK: "rtc ",
            }[result.outcome]
            lines.append(
                f"  [{marker}] {result.kind:<11} {result.subject:<28} "
                f"{result.description} ({result.cases_checked} cases)"
            )
            if result.counterexample is not None:
                lines.append(f"         counterexample: {result.counterexample!r}")
        return "\n".join(lines)
