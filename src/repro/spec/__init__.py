"""Specifications and contracts — the Spec#/Boogie substitute.

The paper (sections 5 and 6) recommends a discipline where every shared
operation ``s`` conforms to a specification φs ⊆ S×S: if ``s`` returns
True the pre/post state pair satisfies φs; if it returns False the
shared state is unchanged.  The authors wrote the contracts in Spec#
and discharged them with the Boogie verifier, which classified
assertions into statically verified, provably failing, and
runtime-checked.

This package reproduces that workflow without Spec#:

* :mod:`repro.spec.contracts` — ``@requires`` / ``@ensures`` /
  ``@modifies`` method decorators and an ``@invariant`` class
  decorator, with switchable runtime checking.
* :mod:`repro.spec.conformance` — the φs conformance checker (the
  False-implies-unchanged rule is checked for *every* operation).
* :mod:`repro.spec.verifier` — a bounded-exhaustive "Boogie-lite" that
  classifies every declared assertion as VERIFIED (holds on the whole
  declared state domain), REFUTED (counterexample found), or
  RUNTIME_CHECK (domain too large to exhaust — the assertion stays as
  an instrumented runtime check, exactly Spec#'s fallback).
* :mod:`repro.spec.domains` — finite/sampled state-and-argument domains
  the verifier quantifies over.
"""

from repro.spec.contracts import (
    commutative,
    contract_assertions,
    ensures,
    invariant,
    is_commutative,
    modifies,
    requires,
    set_checking,
)
from repro.spec.conformance import ConformanceReport, check_conformance
from repro.spec.domains import (
    Domain,
    booleans,
    choices,
    integers,
    product,
    sampled,
)
from repro.spec.report import AssertionOutcome, VerificationReport
from repro.spec.verifier import Verifier

__all__ = [
    "AssertionOutcome",
    "ConformanceReport",
    "Domain",
    "VerificationReport",
    "Verifier",
    "booleans",
    "check_conformance",
    "choices",
    "commutative",
    "contract_assertions",
    "ensures",
    "integers",
    "invariant",
    "is_commutative",
    "modifies",
    "product",
    "requires",
    "sampled",
    "set_checking",
]
