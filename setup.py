"""Shim for legacy editable installs (offline environments).

All real metadata lives in pyproject.toml; this file exists so
``pip install -e .`` works without network access to build-isolation
dependencies.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["guesstimate-bench = repro.cli:main"]},
)
